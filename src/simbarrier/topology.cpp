#include "simbarrier/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace imbar::simb {

int Topology::new_node(int ring) {
  nodes_.emplace_back();
  nodes_.back().ring = ring;
  return static_cast<int>(nodes_.size()) - 1;
}

Topology Topology::plain(std::size_t procs, std::size_t degree) {
  if (procs < 1) throw std::invalid_argument("Topology::plain: procs < 1");
  if (degree < 2) throw std::invalid_argument("Topology::plain: degree < 2");

  Topology t;
  t.kind_ = TreeKind::kPlain;
  t.degree_ = degree;
  t.initial_counter_.resize(procs);
  t.proc_ring_.assign(procs, 0);

  // Leaf level: ceil(p/d) counters, processors in contiguous chunks.
  const std::size_t leaves = (procs + degree - 1) / degree;
  std::vector<int> level_nodes;
  level_nodes.reserve(leaves);
  for (std::size_t l = 0; l < leaves; ++l) {
    const int c = t.new_node(0);
    const std::size_t lo = l * degree;
    const std::size_t hi = std::min(procs, lo + degree);
    t.nodes_[static_cast<std::size_t>(c)].fan_in = static_cast<int>(hi - lo);
    for (std::size_t p = lo; p < hi; ++p) t.initial_counter_[p] = c;
    level_nodes.push_back(c);
  }

  // Internal levels: group counters d at a time until one remains.
  while (level_nodes.size() > 1) {
    std::vector<int> next;
    next.reserve((level_nodes.size() + degree - 1) / degree);
    for (std::size_t i = 0; i < level_nodes.size(); i += degree) {
      const int parent = t.new_node(0);
      const std::size_t hi = std::min(level_nodes.size(), i + degree);
      for (std::size_t j = i; j < hi; ++j) {
        t.nodes_[static_cast<std::size_t>(level_nodes[j])].parent = parent;
        t.nodes_[static_cast<std::size_t>(parent)].children.push_back(level_nodes[j]);
      }
      t.nodes_[static_cast<std::size_t>(parent)].fan_in = static_cast<int>(hi - i);
      next.push_back(parent);
    }
    level_nodes = std::move(next);
  }
  t.root_ = level_nodes.front();
  return t;
}

int Topology::build_mcs_subtree(std::size_t lo, std::size_t hi, int ring,
                                std::size_t degree) {
  const std::size_t n = hi - lo;
  const int c = new_node(ring);
  if (n <= degree + 1) {
    // Leaf counter: all processors attach here.
    nodes_[static_cast<std::size_t>(c)].fan_in = static_cast<int>(n);
    for (std::size_t p = lo; p < hi; ++p) {
      initial_counter_[p] = c;
      proc_ring_[p] = ring;
    }
    return c;
  }
  // Internal counter: first processor attaches here, the rest split
  // into `degree` nearly equal child groups.
  initial_counter_[lo] = c;
  proc_ring_[lo] = ring;
  const std::size_t rest = n - 1;
  std::size_t start = lo + 1;
  int children = 0;
  for (std::size_t g = 0; g < degree && start < hi; ++g) {
    const std::size_t size = rest / degree + (g < rest % degree ? 1 : 0);
    if (size == 0) continue;
    const int child = build_mcs_subtree(start, start + size, ring, degree);
    nodes_[static_cast<std::size_t>(child)].parent = c;
    nodes_[static_cast<std::size_t>(c)].children.push_back(child);
    start += size;
    ++children;
  }
  nodes_[static_cast<std::size_t>(c)].fan_in = children + 1;
  return c;
}

Topology Topology::mcs(std::size_t procs, std::size_t degree) {
  if (procs < 1) throw std::invalid_argument("Topology::mcs: procs < 1");
  if (degree < 2) throw std::invalid_argument("Topology::mcs: degree < 2");

  Topology t;
  t.kind_ = TreeKind::kMcs;
  t.degree_ = degree;
  t.initial_counter_.resize(procs);
  t.proc_ring_.assign(procs, 0);
  t.root_ = t.build_mcs_subtree(0, procs, 0, degree);
  return t;
}

Topology Topology::mcs_rings(const std::vector<std::size_t>& ring_sizes,
                             std::size_t degree) {
  if (ring_sizes.empty())
    throw std::invalid_argument("Topology::mcs_rings: no rings");
  for (auto s : ring_sizes)
    if (s < 1) throw std::invalid_argument("Topology::mcs_rings: empty ring");
  if (ring_sizes.size() == 1) return mcs(ring_sizes[0], degree);
  if (degree < 2) throw std::invalid_argument("Topology::mcs_rings: degree < 2");

  std::size_t procs = 0;
  for (auto s : ring_sizes) procs += s;
  if (ring_sizes[0] < 2)
    throw std::invalid_argument(
        "Topology::mcs_rings: ring 0 needs >= 2 procs (one attaches to the root)");

  Topology t;
  t.kind_ = TreeKind::kMcs;
  t.degree_ = degree;
  t.initial_counter_.resize(procs);
  t.proc_ring_.assign(procs, 0);

  // Root counter carries ring 0's first processor (KSR1-style merge of
  // per-ring subtrees by one additional level).
  const int root = t.new_node(0);
  t.initial_counter_[0] = root;
  t.proc_ring_[0] = 0;

  std::size_t start = 1;  // proc 0 is the root's attachment
  int children = 0;
  for (std::size_t r = 0; r < ring_sizes.size(); ++r) {
    const std::size_t size = ring_sizes[r] - (r == 0 ? 1 : 0);
    const int sub =
        t.build_mcs_subtree(start, start + size, static_cast<int>(r), degree);
    t.nodes_[static_cast<std::size_t>(sub)].parent = root;
    t.nodes_[static_cast<std::size_t>(root)].children.push_back(sub);
    start += size;
    ++children;
  }
  t.nodes_[static_cast<std::size_t>(root)].fan_in = children + 1;
  t.root_ = root;
  return t;
}

int Topology::depth_to_root(int c) const {
  int depth = 0;
  while (c != -1) {
    ++depth;
    c = nodes_.at(static_cast<std::size_t>(c)).parent;
  }
  return depth;
}

int Topology::max_depth() const {
  int best = 0;
  for (int c : initial_counter_) best = std::max(best, depth_to_root(c));
  return best;
}

int Topology::attached_count(int c) const {
  const auto& n = nodes_.at(static_cast<std::size_t>(c));
  return n.fan_in - static_cast<int>(n.children.size());
}

Topology Topology::without_proc(std::size_t proc) const {
  if (proc >= procs())
    throw std::invalid_argument("Topology::without_proc: proc out of range");
  if (procs() < 2)
    throw std::logic_error("Topology::without_proc: last processor");

  Topology t = *this;
  const int start = t.initial_counter_[proc];
  t.initial_counter_.erase(t.initial_counter_.begin() +
                           static_cast<std::ptrdiff_t>(proc));
  t.proc_ring_.erase(t.proc_ring_.begin() + static_cast<std::ptrdiff_t>(proc));

  auto node_of = [&t](int c) -> CounterNode& {
    return t.nodes_[static_cast<std::size_t>(c)];
  };
  auto drop_child = [&](int parent, int child) {
    auto& kids = node_of(parent).children;
    kids.erase(std::find(kids.begin(), kids.end(), child));
    --node_of(parent).fan_in;
  };

  std::vector<bool> removed(t.nodes_.size(), false);
  --node_of(start).fan_in;

  if (kind_ == TreeKind::kPlain) {
    // Prune the leaf if it drained, cascading through internal counters
    // whose whole child set vanished (their fan_in is the child count).
    int cur = start;
    while (cur != -1 && node_of(cur).fan_in == 0) {
      const int parent = node_of(cur).parent;
      if (parent == -1) break;  // root with survivors elsewhere: impossible
      drop_child(parent, cur);
      removed[static_cast<std::size_t>(cur)] = true;
      cur = parent;
    }
  } else {
    // kMcs: every counter needs >= 1 attached processor. If `start`
    // lost its only attachment, splice its children onto its parent —
    // the reparenting step — or promote a child when it was the root.
    if (t.attached_count(start) == 0) {
      const int parent = node_of(start).parent;
      auto kids = node_of(start).children;  // copy: splice mutates
      if (parent != -1) {
        drop_child(parent, start);
        for (int k : kids) {
          node_of(k).parent = parent;
          node_of(parent).children.push_back(k);
          ++node_of(parent).fan_in;
        }
      } else {
        // Root drained: promote the first child, absorbing its siblings.
        const int heir = kids.front();
        node_of(heir).parent = -1;
        for (std::size_t i = 1; i < kids.size(); ++i) {
          node_of(kids[i]).parent = heir;
          node_of(heir).children.push_back(kids[i]);
          ++node_of(heir).fan_in;
        }
        t.root_ = heir;
      }
      removed[static_cast<std::size_t>(start)] = true;
    }
  }

  // Compact counter ids over the surviving nodes.
  std::vector<int> remap(t.nodes_.size(), -1);
  std::vector<CounterNode> packed;
  packed.reserve(t.nodes_.size());
  for (std::size_t c = 0; c < t.nodes_.size(); ++c) {
    if (removed[c]) continue;
    remap[c] = static_cast<int>(packed.size());
    packed.push_back(std::move(t.nodes_[c]));
  }
  for (auto& n : packed) {
    if (n.parent != -1) n.parent = remap[static_cast<std::size_t>(n.parent)];
    for (auto& k : n.children) k = remap[static_cast<std::size_t>(k)];
  }
  t.nodes_ = std::move(packed);
  for (auto& c : t.initial_counter_) c = remap[static_cast<std::size_t>(c)];
  t.root_ = remap[static_cast<std::size_t>(t.root_)];

  t.validate();
  return t;
}

void Topology::validate() const {
  if (root_ < 0 || static_cast<std::size_t>(root_) >= nodes_.size())
    throw std::logic_error("Topology: bad root");
  if (nodes_[static_cast<std::size_t>(root_)].parent != -1)
    throw std::logic_error("Topology: root has a parent");

  // Exactly one root; children/parent pointers agree.
  std::size_t roots = 0;
  for (std::size_t c = 0; c < nodes_.size(); ++c) {
    const auto& n = nodes_[c];
    if (n.parent == -1) {
      ++roots;
    } else {
      const auto& par = nodes_.at(static_cast<std::size_t>(n.parent));
      if (std::find(par.children.begin(), par.children.end(),
                    static_cast<int>(c)) == par.children.end())
        throw std::logic_error("Topology: parent/child mismatch");
    }
    if (n.fan_in < 1) throw std::logic_error("Topology: counter with fan_in < 1");
    if (attached_count(static_cast<int>(c)) < 0)
      throw std::logic_error("Topology: fan_in below child count");
  }
  if (roots != 1) throw std::logic_error("Topology: not exactly one root");

  // Every processor is placed on an existing counter, and per-counter
  // attachment totals match fan-ins.
  std::vector<int> attached(nodes_.size(), 0);
  for (std::size_t p = 0; p < initial_counter_.size(); ++p) {
    const int c = initial_counter_[p];
    if (c < 0 || static_cast<std::size_t>(c) >= nodes_.size())
      throw std::logic_error("Topology: processor on nonexistent counter");
    ++attached[static_cast<std::size_t>(c)];
  }
  for (std::size_t c = 0; c < nodes_.size(); ++c) {
    if (attached[c] != attached_count(static_cast<int>(c)))
      throw std::logic_error("Topology: attachment count != fan_in - children");
    if (kind_ == TreeKind::kMcs && attached[c] < 1)
      throw std::logic_error("Topology: MCS counter without attached processor");
    if (kind_ == TreeKind::kPlain && !nodes_[c].children.empty() && attached[c] != 0)
      throw std::logic_error("Topology: plain internal counter has attachments");
  }

  // Acyclicity: depth_to_root terminates within counters() steps.
  for (std::size_t c = 0; c < nodes_.size(); ++c) {
    int cur = static_cast<int>(c), steps = 0;
    while (cur != -1) {
      cur = nodes_[static_cast<std::size_t>(cur)].parent;
      if (++steps > static_cast<int>(nodes_.size()))
        throw std::logic_error("Topology: cycle in parent chain");
    }
  }
}

}  // namespace imbar::simb
