// Combining-tree topologies for the simulated barriers.
//
// Two structural kinds (paper Sections 1 and 5):
//  * kPlain — the Yew/Tzeng/Lawrie software combining tree: processors
//    attach only to leaf counters (d per leaf); internal counters are
//    fed purely by child carries. A degree >= p tree degenerates to the
//    single central counter.
//  * kMcs  — the Mellor-Crummey & Scott variant: every counter has at
//    least one statically attached processor; leaf counters hold up to
//    d+1 processors. This is the structure the dynamic-placement
//    barrier modifies.
//
// Topologies can be partitioned into locality *rings* (KSR1: rings of
// 32 processors); dynamic placement never swaps across ring boundaries
// (paper footnote 5).
#pragma once

#include <cstddef>
#include <vector>

namespace imbar::simb {

enum class TreeKind { kPlain, kMcs };

struct CounterNode {
  int parent = -1;            // -1 for the root
  std::vector<int> children;  // child counter ids
  int ring = 0;               // locality group
  int fan_in = 0;             // updates required to fill: children + attached
};

class Topology {
 public:
  /// Plain combining tree: ceil(p/d) leaves with d processors each.
  static Topology plain(std::size_t procs, std::size_t degree);

  /// Central counter == plain tree of degree p.
  static Topology central(std::size_t procs) { return plain(procs, procs); }

  /// MCS-variant tree: one processor attached per internal counter,
  /// up to degree+1 per leaf.
  static Topology mcs(std::size_t procs, std::size_t degree);

  /// MCS-variant tree over locality rings: one subtree per ring, merged
  /// under a single root counter (which carries ring 0's first
  /// processor, mirroring the paper's KSR1 setup of 32+24 processors).
  static Topology mcs_rings(const std::vector<std::size_t>& ring_sizes,
                            std::size_t degree);

  [[nodiscard]] TreeKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t degree() const noexcept { return degree_; }
  [[nodiscard]] std::size_t procs() const noexcept { return initial_counter_.size(); }
  [[nodiscard]] std::size_t counters() const noexcept { return nodes_.size(); }
  [[nodiscard]] int root() const noexcept { return root_; }
  [[nodiscard]] const CounterNode& node(int c) const { return nodes_.at(static_cast<std::size_t>(c)); }

  /// Counter each processor initially updates first.
  [[nodiscard]] const std::vector<int>& initial_counter() const noexcept {
    return initial_counter_;
  }
  /// Ring of each processor.
  [[nodiscard]] const std::vector<int>& proc_ring() const noexcept {
    return proc_ring_;
  }

  /// Number of counters on the path from c to the root, inclusive —
  /// the "depth seen by" a processor whose first counter is c.
  [[nodiscard]] int depth_to_root(int c) const;

  /// Longest depth_to_root over all initial placements (the tree depth
  /// reported in Figure 2's update-delay component).
  [[nodiscard]] int max_depth() const;

  /// Initial attached-processor count of counter c (fan_in minus child
  /// carries) — constant under dynamic placement swaps.
  [[nodiscard]] int attached_count(int c) const;

  /// Throws std::logic_error if structural invariants are violated
  /// (every proc placed, fan-ins consistent, tree acyclic, one root).
  void validate() const;

  /// Reparenting splice: the topology with processor `proc` removed.
  /// The processor's counter loses one unit of fan-in; counters left
  /// without a reason to exist are repaired structurally rather than by
  /// rebuilding — a kPlain leaf drained of processors is pruned (the
  /// prune cascades up through emptied internal counters), and a kMcs
  /// counter drained of its attachment has its children re-attached to
  /// its parent (at the root: the first child is promoted and absorbs
  /// its siblings). Surviving processors keep their relative order and
  /// are re-indexed densely: survivor p > proc becomes p - 1. Counter
  /// ids are likewise compacted. The result is validate()d before
  /// return. Throws std::invalid_argument if `proc` is out of range and
  /// std::logic_error when removing the last processor.
  [[nodiscard]] Topology without_proc(std::size_t proc) const;

 private:
  Topology() = default;

  int new_node(int ring);
  int build_mcs_subtree(std::size_t lo, std::size_t hi, int ring,
                        std::size_t degree);

  TreeKind kind_ = TreeKind::kPlain;
  std::size_t degree_ = 0;
  std::vector<CounterNode> nodes_;
  std::vector<int> initial_counter_;  // per processor
  std::vector<int> proc_ring_;        // per processor
  int root_ = -1;
};

}  // namespace imbar::simb
