#include "simbarrier/tree_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace imbar::simb {

TreeBarrierSim::TreeBarrierSim(Topology topology, SimOptions opts)
    : topo_(std::move(topology)), opts_(opts), rng_(opts.rng_seed) {
  if (opts_.placement == Placement::kDynamic && topo_.kind() != TreeKind::kMcs)
    throw std::invalid_argument(
        "TreeBarrierSim: dynamic placement requires an MCS-variant tree "
        "(every counter needs an attached processor to swap with)");
  if (opts_.t_c <= 0.0)
    throw std::invalid_argument("TreeBarrierSim: t_c must be positive");
  if (opts_.cross_ring_factor < 1.0)
    throw std::invalid_argument(
        "TreeBarrierSim: cross_ring_factor must be >= 1");

  if (opts_.hotspot_coefficient < 0.0)
    throw std::invalid_argument(
        "TreeBarrierSim: hotspot_coefficient must be >= 0");

  const std::size_t nc = topo_.counters();
  resources_.reserve(nc);  // never reallocated: resources self-schedule
  for (std::size_t c = 0; c < nc; ++c) {
    resources_.emplace_back(engine_, opts_.service_order, &rng_);
    if (opts_.hotspot_coefficient > 0.0) {
      const double h = opts_.hotspot_coefficient;
      resources_.back().set_service_scaler(
          [h](sim::Time base, std::size_t queued) {
            return base * (1.0 + h * static_cast<double>(queued));
          });
    }
  }

  counter_of_proc_ = topo_.initial_counter();
  attached_.assign(nc, {});
  for (std::size_t p = 0; p < counter_of_proc_.size(); ++p)
    attached_[static_cast<std::size_t>(counter_of_proc_[p])].push_back(
        static_cast<int>(p));
  victim_penalty_.assign(topo_.procs(), false);

  counts_.assign(nc, 0);
  filler_.assign(nc, -1);
  updates_of_proc_.assign(topo_.procs(), 0);
  wait_of_proc_.assign(topo_.procs(), 0.0);
}

void TreeBarrierSim::reset() {
  engine_.reset();
  counter_of_proc_ = topo_.initial_counter();
  for (auto& a : attached_) a.clear();
  for (std::size_t p = 0; p < counter_of_proc_.size(); ++p)
    attached_[static_cast<std::size_t>(counter_of_proc_[p])].push_back(
        static_cast<int>(p));
  std::fill(victim_penalty_.begin(), victim_penalty_.end(), false);
  total_updates_ = total_extras_ = total_swaps_ = 0;
}

void TreeBarrierSim::issue_update(int proc, int counter) {
  const double requested = engine_.now();
  double service = opts_.t_c;
  if (opts_.cross_ring_factor != 1.0 &&
      topo_.node(counter).ring != topo_.proc_ring()[static_cast<std::size_t>(proc)])
    service *= opts_.cross_ring_factor;
  resources_[static_cast<std::size_t>(counter)].request(
      service, [this, proc, counter, requested](double start, double done) {
        wait_of_proc_[static_cast<std::size_t>(proc)] += start - requested;
        if (observer_) {
          UpdateEvent ev;
          ev.proc = proc;
          ev.counter = counter;
          ev.requested = requested;
          ev.start = start;
          ev.done = done;
          ev.filled = counts_[static_cast<std::size_t>(counter)] + 1 ==
                      topo_.node(counter).fan_in;
          observer_(ev);
        }
        on_update_done(proc, counter, done);
      });
}

void TreeBarrierSim::on_update_done(int proc, int counter, double done) {
  ++updates_of_proc_[static_cast<std::size_t>(proc)];
  ++iter_updates_;
  const auto& node = topo_.node(counter);
  if (++counts_[static_cast<std::size_t>(counter)] == node.fan_in) {
    filler_[static_cast<std::size_t>(counter)] = proc;
    if (node.parent != -1) {
      issue_update(proc, node.parent);  // carry: engine.now() == done
    } else {
      release_ = done;
      root_filled_ = true;
    }
  }
}

IterationResult TreeBarrierSim::run_iteration(std::span<const double> signals) {
  if (signals.size() != topo_.procs())
    throw std::invalid_argument("run_iteration: signal count != procs");

  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(filler_.begin(), filler_.end(), -1);
  std::fill(updates_of_proc_.begin(), updates_of_proc_.end(), 0);
  std::fill(wait_of_proc_.begin(), wait_of_proc_.end(), 0.0);
  iter_updates_ = 0;
  root_filled_ = false;

  IterationResult res;
  for (std::size_t p = 0; p < signals.size(); ++p) {
    double arrival = signals[p];
    if (arrival < engine_.now())
      throw std::invalid_argument(
          "run_iteration: arrival precedes previous release");
    if (victim_penalty_[p]) {
      // Swapped-out victim: one extra communication to read the
      // Destination field of its old counter (paper Figure 6d).
      arrival += opts_.t_c;
      ++total_extras_;
      ++res.extra_comms;
      victim_penalty_[p] = false;
    }
    const int proc = static_cast<int>(p);
    engine_.schedule(arrival,
                     [this, proc] { issue_update(proc, counter_of_proc_[static_cast<std::size_t>(proc)]); });
    if (signals[p] > res.last_arrival || res.last_proc < 0) {
      res.last_arrival = signals[p];
      res.last_proc = proc;
    }
  }

  engine_.run();
  if (!root_filled_)
    throw std::logic_error("run_iteration: barrier did not release");

  res.release = release_;
  res.sync_delay = release_ - res.last_arrival;
  res.last_proc_depth = updates_of_proc_[static_cast<std::size_t>(res.last_proc)];
  res.last_proc_wait = wait_of_proc_[static_cast<std::size_t>(res.last_proc)];
  res.updates = iter_updates_;
  total_updates_ += iter_updates_;

  if (opts_.placement == Placement::kDynamic) apply_dynamic_swaps(res);
  return res;
}

void TreeBarrierSim::swap_into(int victor, int target, IterationResult& result) {
  auto& target_att = attached_[static_cast<std::size_t>(target)];
  // Swap targets are strict ancestors of the victor's position, hence
  // internal MCS counters with exactly one attached processor.
  const int victim = target_att.front();
  const int old_counter = counter_of_proc_[static_cast<std::size_t>(victor)];

  auto& old_att = attached_[static_cast<std::size_t>(old_counter)];
  old_att.erase(std::find(old_att.begin(), old_att.end(), victor));
  target_att.erase(std::find(target_att.begin(), target_att.end(), victim));

  target_att.push_back(victor);
  old_att.push_back(victim);
  counter_of_proc_[static_cast<std::size_t>(victor)] = target;
  counter_of_proc_[static_cast<std::size_t>(victim)] = old_counter;
  victim_penalty_[static_cast<std::size_t>(victim)] = true;
  ++result.swaps;
  ++total_swaps_;
}

void TreeBarrierSim::apply_dynamic_swaps(IterationResult& result) {
  // Victors: for each processor, the chain of counters it filled above
  // its first counter (contiguous by construction: a processor only
  // reaches counter c's parent by filling c).
  for (std::size_t p = 0; p < counter_of_proc_.size(); ++p) {
    const int proc = static_cast<int>(p);
    const int first = counter_of_proc_[p];
    const int ring = topo_.proc_ring()[p];

    // Collect the filled chain strictly above `first`.
    std::vector<int> chain;
    int c = first;
    while (c != -1 && filler_[static_cast<std::size_t>(c)] == proc) {
      if (c != first) {
        if (opts_.respect_rings && topo_.node(c).ring != ring)
          break;  // locality: never migrate across ring boundaries
        chain.push_back(c);
      }
      c = topo_.node(c).parent;
    }
    if (chain.empty()) continue;

    switch (opts_.swap_policy) {
      case SwapPolicy::kCascade:
        // Climb one counter at a time, displacing each occupant to the
        // victor's previous position.
        for (int target : chain) swap_into(proc, target, result);
        break;
      case SwapPolicy::kSingleHighest:
        swap_into(proc, chain.back(), result);
        break;
      case SwapPolicy::kOneLevel:
        swap_into(proc, chain.front(), result);
        break;
    }
  }
}

}  // namespace imbar::simb
