// Event-driven simulation of combining-tree barriers.
//
// Mechanics (paper Sections 1, 3, 5): each counter is a serially-served
// resource; an update occupies it for t_c. The processor whose update
// brings a counter to its fan-in ("the filler") carries on to the
// parent; filling the root releases the barrier. Synchronization delay
// = root-fill time - last arrival.
//
// With Placement::kDynamic the simulator also applies the paper's
// dynamic-placement protocol after every iteration: the filler of a
// chain of counters swaps with the processor attached to the highest
// counter it filled (the victor/victim swap of Figures 6-7), subject to
// ring-locality constraints. The victim pays one extra communication at
// its next barrier to discover its new initial counter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <functional>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "simbarrier/topology.hpp"
#include "util/prng.hpp"

namespace imbar::simb {

/// One completed counter update, as seen by a trace observer.
struct UpdateEvent {
  int proc = -1;
  int counter = -1;
  double requested = 0.0;  // when the processor asked for the counter
  double start = 0.0;      // when service began (start - requested = wait)
  double done = 0.0;       // start + service time
  bool filled = false;     // this update brought the counter to fan_in
};

/// Called once per completed update, in completion order.
using TraceObserver = std::function<void(const UpdateEvent&)>;

enum class Placement { kStatic, kDynamic };

/// How a victor repositions along the chain of counters it filled.
///  * kCascade — swap at every fill: the victor climbs one counter at a
///    time, displacing each counter's occupant to its previous position.
///    This is what a lock-free concurrent implementation can do (the
///    swap must be published before the parent update), and is the
///    semantics of the threaded DynamicPlacementBarrier.
///  * kSingleHighest — one end-of-round swap with the highest filled
///    counter (the literal reading of the paper's Figure 6).
///  * kOneLevel — at most one level of climb per iteration (ablation).
enum class SwapPolicy { kCascade, kSingleHighest, kOneLevel };

struct SimOptions {
  double t_c = 20.0;                       // counter update time
  Placement placement = Placement::kStatic;
  sim::ServiceOrder service_order = sim::ServiceOrder::kFifo;
  SwapPolicy swap_policy = SwapPolicy::kCascade;
  bool respect_rings = true;               // forbid cross-ring swaps
  // NUMA-style locality: an update on a counter in a different ring
  // than the issuing processor costs t_c * cross_ring_factor (KSR1
  // cross-ring accesses traverse the upper ring). 1.0 = uniform memory.
  double cross_ring_factor = 1.0;
  // Hot-spot congestion (Pfister & Norton): each update's service time
  // is inflated to t_c * (1 + hotspot_coefficient * waiters_behind_it),
  // modelling the traffic that spinning processors impose on the
  // counter's memory module. 0 = the paper's plain serialization model.
  double hotspot_coefficient = 0.0;
  std::uint64_t rng_seed = 1;              // only used by kRandom service
};

struct IterationResult {
  double release = 0.0;        // absolute time the root counter filled
  double last_arrival = 0.0;   // max over signals
  double sync_delay = 0.0;     // release - last_arrival
  int last_proc = -1;          // argmax of signals
  int last_proc_depth = 0;     // counters the last processor updated
  double last_proc_wait = 0.0; // contention delay on its path
  std::uint64_t updates = 0;   // counter updates this iteration
  std::uint64_t extra_comms = 0;  // victim destination reads paid this iter
  std::size_t swaps = 0;       // dynamic swaps applied after this iter
};

class TreeBarrierSim {
 public:
  TreeBarrierSim(Topology topology, SimOptions opts);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const SimOptions& options() const noexcept { return opts_; }

  /// Simulate one barrier. `signals` are absolute arrival times, all
  /// >= the previous iteration's release (a barrier cannot be re-entered
  /// before it released). Throws std::invalid_argument on size mismatch.
  IterationResult run_iteration(std::span<const double> signals);

  /// Restore initial placement and rewind the simulated clock.
  void reset();

  /// Current first counter of every processor (changes under dynamic
  /// placement).
  [[nodiscard]] const std::vector<int>& placement() const noexcept {
    return counter_of_proc_;
  }

  /// Per-processor update counts of the most recent iteration.
  [[nodiscard]] const std::vector<int>& last_updates_per_proc() const noexcept {
    return updates_of_proc_;
  }

  /// Install (or clear, with nullptr) a per-update trace observer.
  /// Adds overhead; meant for tests and debugging dumps.
  void set_trace_observer(TraceObserver observer) {
    observer_ = std::move(observer);
  }

  /// Lifetime communication totals (updates + victim extras).
  [[nodiscard]] std::uint64_t total_comms() const noexcept {
    return total_updates_ + total_extras_;
  }
  [[nodiscard]] std::uint64_t total_updates() const noexcept { return total_updates_; }
  [[nodiscard]] std::uint64_t total_extras() const noexcept { return total_extras_; }
  [[nodiscard]] std::uint64_t total_swaps() const noexcept { return total_swaps_; }

 private:
  void issue_update(int proc, int counter);
  void on_update_done(int proc, int counter, double done);
  void apply_dynamic_swaps(IterationResult& result);
  void swap_into(int victor, int target, IterationResult& result);

  Topology topo_;
  SimOptions opts_;
  sim::Engine engine_;
  Xoshiro256 rng_;
  TraceObserver observer_;
  std::vector<sim::SerialResource> resources_;  // one per counter

  // Placement state (mutated by dynamic swaps).
  std::vector<int> counter_of_proc_;
  std::vector<std::vector<int>> attached_;  // procs per counter
  std::vector<bool> victim_penalty_;        // extra comm pending

  // Per-iteration scratch.
  std::vector<int> counts_;          // updates received per counter
  std::vector<int> filler_;          // proc that filled each counter
  std::vector<int> updates_of_proc_;
  std::vector<double> wait_of_proc_;
  double release_ = 0.0;
  bool root_filled_ = false;

  std::uint64_t iter_updates_ = 0;
  std::uint64_t total_updates_ = 0;
  std::uint64_t total_extras_ = 0;
  std::uint64_t total_swaps_ = 0;
};

}  // namespace imbar::simb
