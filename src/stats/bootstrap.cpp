#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/summary.hpp"
#include "util/prng.hpp"

namespace imbar {

Interval bootstrap_mean_ci(std::span<const double> xs, double level,
                           int resamples, std::uint64_t seed) {
  if (xs.empty()) return {};
  if (xs.size() == 1 || resamples <= 0) return {xs[0], xs[0]};

  Xoshiro256 rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = xs.size();
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += xs[rng.below(n)];
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - level) / 2.0;
  return {quantile_sorted(means, alpha), quantile_sorted(means, 1.0 - alpha)};
}

}  // namespace imbar
