// Bootstrap confidence intervals for bench summary lines.
#pragma once

#include <cstdint>
#include <span>

namespace imbar {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double width() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(double x) const noexcept { return x >= lo && x <= hi; }
};

/// Percentile-bootstrap CI of the sample mean. `level` in (0,1), e.g.
/// 0.95. Deterministic given `seed`. Degenerate samples return [x,x].
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> xs,
                                         double level = 0.95,
                                         int resamples = 1000,
                                         std::uint64_t seed = 42);

}  // namespace imbar
