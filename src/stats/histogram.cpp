#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace imbar {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge guard
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size())
    throw std::invalid_argument("Histogram::merge: geometry mismatch");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::fraction(std::size_t bin) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  return in_range ? static_cast<double>(count(bin)) / static_cast<double>(in_range)
                  : 0.0;
}

double Histogram::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0))
    throw std::invalid_argument("Histogram::quantile: q outside [0,1]");
  if (total_ == 0) return lo_;
  // Rank among all samples, counting underflow below the range and
  // overflow above it.
  const double rank = q * static_cast<double>(total_ - 1);
  double cum = static_cast<double>(underflow_);
  if (rank < cum) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto c = static_cast<double>(counts_[b]);
    if (c > 0.0 && rank < cum + c) {
      // Linear interpolation within the bin.
      const double frac = (rank - cum + 0.5) / c;
      return bin_lo(b) + width_ * std::min(frac, 1.0);
    }
    cum += c;
  }
  return hi_;  // rank fell in the overflow bucket
}

std::string Histogram::ascii(int max_bar) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  char buf[96];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const int bar = static_cast<int>(static_cast<double>(counts_[b]) /
                                     static_cast<double>(peak) * max_bar);
    std::snprintf(buf, sizeof(buf), "  [%10.3f, %10.3f) ", bin_lo(b), bin_hi(b));
    out << buf << std::string(static_cast<std::size_t>(bar), '#') << ' '
        << counts_[b] << '\n';
  }
  if (underflow_ || overflow_)
    out << "  (underflow " << underflow_ << ", overflow " << overflow_ << ")\n";
  return out.str();
}

}  // namespace imbar
