// Fixed-bin histogram with ASCII rendering.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace imbar {

/// Equal-width histogram over [lo, hi); samples outside the range are
/// counted in underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Fold `other`'s counts into this histogram. Both must share the
  /// same geometry (lo, hi, bins) — the per-shard service accumulators
  /// are constructed from one Options value so this always holds there;
  /// a mismatch throws std::invalid_argument.
  void merge(const Histogram& other);

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of in-range samples in `bin` (0 if histogram is empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Render as rows of `lo..hi | #### count`.
  [[nodiscard]] std::string ascii(int max_bar = 50) const;

  /// Approximate q-quantile (q in [0,1]) with linear interpolation
  /// inside the containing bin. Underflow samples pin to `lo`, overflow
  /// to `hi`; resolution is one bin width. Throws std::invalid_argument
  /// for q outside [0,1]; returns lo for an empty histogram.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

}  // namespace imbar
