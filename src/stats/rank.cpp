#include "stats/rank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace imbar {

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double rank_autocorrelation(const std::vector<std::vector<double>>& rows,
                            std::size_t lag) {
  if (rows.size() <= lag || lag == 0) return lag == 0 ? 1.0 : 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t + lag < rows.size(); ++t) {
    sum += spearman(rows[t], rows[t + lag]);
    ++count;
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace imbar
