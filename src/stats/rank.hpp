// Rank statistics: used to quantify how *predictable* processor arrival
// order is across barrier iterations (paper Section 5 / Figure 5: slow
// processors stay slow for ~20 iterations under fuzzy-barrier slack).
#pragma once

#include <span>
#include <vector>

namespace imbar {

/// Fractional ranks (1-based, ties get the average rank).
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

/// Spearman rank correlation coefficient of two equal-length samples.
/// Returns 0 for degenerate inputs (n < 2 or zero variance).
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation (helper; also used by spearman on ranks).
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Rank autocorrelation of a (iterations x processors) series:
/// mean over t of spearman(row[t], row[t+lag]). `rows` is addressed as
/// rows[t][p]. Returns 0 when fewer than lag+1 rows.
[[nodiscard]] double rank_autocorrelation(
    const std::vector<std::vector<double>>& rows, std::size_t lag);

}  // namespace imbar
