#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace imbar {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Pébay's one-pass update of the first four central moments.
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ -
         4 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
  m2_ += term1;
}

void RunningStats::merge(const RunningStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
  const double n = na + nb;
  const double delta = o.mean_ - mean_;
  const double d2 = delta * delta, d3 = d2 * delta, d4 = d2 * d2;

  const double m2 = m2_ + o.m2_ + d2 * na * nb / n;
  const double m3 = m3_ + o.m3_ + d3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * o.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + o.m4_ +
      d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * d2 * (na * na * o.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * o.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * o.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::skewness() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::excess_kurtosis() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double RunningStats::sem() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double quantile_sorted(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q <= 0.0) return xs.front();
  if (q >= 1.0) return xs.back();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

}  // namespace imbar
