// Descriptive statistics: streaming moments and batch quantiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace imbar {

/// Streaming mean/variance/min/max via Welford's algorithm, plus third
/// and fourth central moments for skewness/kurtosis. Numerically stable
/// for long runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void clear() noexcept { *this = RunningStats(); }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Fisher skewness g1 = m3 / m2^(3/2); 0 for degenerate samples.
  [[nodiscard]] double skewness() const noexcept;
  /// Excess kurtosis g2 = m4/m2^2 - 3; 0 for degenerate samples.
  [[nodiscard]] double excess_kurtosis() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0, m3_ = 0.0, m4_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Compute the q-quantile (0 <= q <= 1) of a sample with linear
/// interpolation (type-7, the numpy/R default). Copies and sorts.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile of an already ascending-sorted sample (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> xs, double q);

/// Convenience: mean of a sample (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Convenience: sample standard deviation (n-1); 0 for n < 2.
[[nodiscard]] double stddev_of(std::span<const double> xs) noexcept;

}  // namespace imbar
