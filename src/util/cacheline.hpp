// Cache-line geometry and padded atomics.
//
// Software barriers live and die by false sharing: two counters that
// share a cache line turn logically independent updates into ping-pong
// traffic. Every shared mutable slot in imbar is padded to a full
// destructive-interference span.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <type_traits>

namespace imbar {

// Fixed at 64 (the x86-64/aarch64 line size) rather than
// std::hardware_destructive_interference_size: the constant feeds ABI-
// relevant layout and GCC warns that the library value may drift across
// -mtune settings.
inline constexpr std::size_t kCacheLineSize = 64;

/// A value padded out to occupy (at least) one full cache line.
///
/// Use for arrays of per-thread or per-counter state where neighbouring
/// slots are written by different threads.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Round the footprint up to a multiple of the line size.
  static constexpr std::size_t pad_bytes() {
    return (sizeof(T) % kCacheLineSize == 0)
               ? 0
               : kCacheLineSize - sizeof(T) % kCacheLineSize;
  }
  [[maybe_unused]] std::byte pad_[pad_bytes() == 0 ? 1 : pad_bytes()]{};
};

/// Cache-line padded std::atomic, the building block of all shared
/// barrier state.
template <typename T>
using PaddedAtomic = Padded<std::atomic<T>>;

static_assert(sizeof(Padded<int>) >= kCacheLineSize);
static_assert(alignof(Padded<int>) == kCacheLineSize);
static_assert(sizeof(PaddedAtomic<unsigned>) >= kCacheLineSize);

}  // namespace imbar
