// CRC-32 (ISO-HDLC polynomial, the zlib/PNG variant) for the service
// durability layer's record framing.
//
// Every journal record and snapshot blob carries a checksum of its
// payload so recovery can tell a torn tail or a bit-flipped region
// from valid data (service/journal.hpp). Software table-driven — the
// durability layer checksums kilobytes on the recovery path, not the
// hot path, so portability beats hardware CRC instructions here.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace imbar {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental update: feed `crc32_init()` (or a previous return value)
/// plus the next chunk.
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t state,
                                                std::string_view bytes) noexcept {
  for (const char ch : bytes) {
    const auto b = static_cast<std::uint8_t>(ch);
    state = detail::kCrc32Table[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of `bytes` (matches zlib's crc32(0, ...)).
[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) noexcept {
  return crc32_final(crc32_update(crc32_init(), bytes));
}

}  // namespace imbar
