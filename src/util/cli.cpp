#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace imbar {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "true";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& key, long long def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<long long> Cli::get_int_list(const std::string& key,
                                         const std::vector<long long>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<long long> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& key,
                                         const std::vector<double>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(std::strtod(tok.c_str(), nullptr));
  return out;
}

}  // namespace imbar
