// Tiny --key=value flag parser for the bench/example binaries.
//
// All binaries must run argument-free (the harness executes them in a
// loop), so every flag carries a default; flags exist for interactive
// exploration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace imbar {

class Cli {
 public:
  /// Parses `--key=value` and bare `--flag` arguments. Unknown
  /// positional arguments are collected separately.
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def) const;
  [[nodiscard]] long long get_int(const std::string& key, long long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated list of integers, e.g. --degrees=2,4,8.
  [[nodiscard]] std::vector<long long> get_int_list(
      const std::string& key, const std::vector<long long>& def) const;
  /// Comma-separated list of doubles.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key, const std::vector<double>& def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace imbar
