#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace imbar {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), cols_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
  rows_ = 0;  // header doesn't count
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != cols_)
    throw std::runtime_error("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    cells.emplace_back(buf);
  }
  write_row(cells);
}

}  // namespace imbar
