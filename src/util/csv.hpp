// Minimal CSV writer (for piping bench output into plotting tools).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace imbar {

/// Streams rows to a .csv file. Values containing commas/quotes are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file can't be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);
  void write_row_numeric(const std::vector<double>& values, int precision = 6);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::size_t cols_;
  std::size_t rows_ = 0;
};

}  // namespace imbar
