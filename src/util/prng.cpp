#include "util/prng.hpp"

namespace imbar {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift with rejection of the biased low range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

}  // namespace imbar
