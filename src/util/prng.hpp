// Deterministic pseudo-random number generation.
//
// Simulation results must be bit-reproducible across runs and platforms,
// so imbar carries its own generators instead of relying on
// implementation-defined std::default_random_engine behaviour:
//   * SplitMix64 — seeding / stream splitting
//   * Xoshiro256** — the workhorse uniform generator
#pragma once

#include <array>
#include <cstdint>

namespace imbar {

/// SplitMix64 (Steele, Lea, Flood). Used to expand a single user seed
/// into well-distributed state words and independent substreams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** (Blackman & Vigna): fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derive the i-th independent substream of a master seed.
  /// Substreams get unrelated state via SplitMix64 re-keying.
  static Xoshiro256 substream(std::uint64_t seed, std::uint64_t index) noexcept {
    SplitMix64 sm(seed ^ (0xA3EC647659359ACDULL * (index + 1)));
    Xoshiro256 g(sm.next());
    return g;
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1) — never exactly 0, safe for log()/Phi^-1().
  double uniform_open() noexcept {
    return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Unbiased via rejection (Lemire).
  std::uint64_t below(std::uint64_t bound) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace imbar
