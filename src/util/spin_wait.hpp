// Adaptive spin-wait for busy-wait loops.
//
// Barrier wait loops run on anything from a dedicated core to a heavily
// oversubscribed host (this project's CI runs on a single core with up
// to 8 worker threads). A naive `while (!flag) {}` live-locks the
// sched-quantum away in that regime, so the policy here is: a short
// burst of pause instructions, then escalate to std::this_thread::yield.
//
// Two waiting modes:
//   * SpinWait / spin_until — unbounded, zero bookkeeping: the classic
//     hot path for barriers whose peers are known to be alive.
//   * DeadlineSpinWait / spin_until(pred, WaitContext) — deadline- and
//     cancellation-aware: pause -> yield -> short sleeps with
//     exponential backoff, reporting kTimeout/kCancelled instead of
//     spinning forever. This is the substrate of imbar::robust.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/prng.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace imbar {

/// Issue one CPU relax hint (PAUSE on x86, ISB-ish fallback elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Portable fallback: a compiler barrier so the loop load is re-issued.
  asm volatile("" ::: "memory");
#endif
}

/// Escalating waiter: pause for the first `spin_limit` rounds, then
/// yield the time slice on every round. Reset per wait episode.
class SpinWait {
 public:
  explicit SpinWait(int spin_limit = 64) noexcept : spin_limit_(spin_limit) {}

  void wait() noexcept {
    if (count_ < spin_limit_) {
      // Exponentially growing pause bursts: 1, 2, 4, ... relax hints.
      for (int i = 0; i < (1 << (count_ < 6 ? count_ : 6)); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  int spin_limit_;
  int count_ = 0;
};

/// Spin until `pred()` is true, yielding politely under oversubscription.
template <typename Pred>
void spin_until(Pred&& pred) {
  SpinWait w;
  while (!pred()) w.wait();
}

/// Seeded exponential backoff with decorrelated jitter.
///
/// Identically-seeded waiters that lose a race together would otherwise
/// retry in lockstep and collide again; jitter decorrelates them while
/// the (seed, stream) pair keeps every delay sequence reproducible.
/// Delays follow the "decorrelated jitter" recurrence
///     next = min(cap, uniform(base, prev * 3))
/// so the expected delay grows geometrically but two streams never
/// share a schedule. `pause()` is a drop-in escalation policy for
/// unbounded spin loops: pause bursts, then yields, then jittered
/// sleeps — the same shape as SpinWait/DeadlineSpinWait but with the
/// sleep lengths drawn from the backoff schedule instead of a fixed
/// doubling, so heavily oversubscribed cohorts do not thundering-herd
/// the scheduler. Quarantined members in robust::MembershipGroup use
/// `next_delay()` directly to space readmission probes.
class ExponentialBackoff {
 public:
  struct Options {
    std::chrono::nanoseconds base = std::chrono::microseconds(8);
    std::chrono::nanoseconds cap = std::chrono::microseconds(512);
    int spin_limit = 64;   // pause-burst rounds before yielding
    int yield_limit = 64;  // yield rounds before sleeping
  };

  ExponentialBackoff() noexcept : ExponentialBackoff(Options{}) {}

  /// Seed the jitter stream; `stream` is typically the thread id, so
  /// per-thread schedules are distinct but reproducible run to run.
  explicit ExponentialBackoff(const Options& opts, std::uint64_t seed = 0,
                              std::uint64_t stream = 0) noexcept
      : opts_(opts), rng_(Xoshiro256::substream(seed, stream)),
        prev_(opts.base) {}

  /// Draw the next jittered delay in [base, min(cap, 3 * prev)].
  std::chrono::nanoseconds next_delay() noexcept {
    const auto lo = static_cast<double>(opts_.base.count());
    const double hi = std::max(lo, 3.0 * static_cast<double>(prev_.count()));
    const auto drawn = static_cast<std::int64_t>(lo + rng_.uniform() * (hi - lo));
    prev_ = std::min(opts_.cap, std::chrono::nanoseconds(drawn));
    if (prev_ < opts_.base) prev_ = opts_.base;
    return prev_;
  }

  /// One escalation round for an unbounded wait loop.
  void pause() noexcept {
    if (count_ < opts_.spin_limit) {
      for (int i = 0; i < (1 << (count_ < 6 ? count_ : 6)); ++i) cpu_relax();
      ++count_;
    } else if (count_ < opts_.spin_limit + opts_.yield_limit) {
      std::this_thread::yield();
      ++count_;
    } else {
      std::this_thread::sleep_for(next_delay());
    }
  }

  /// Restart the escalation and the jitter recurrence (not the stream).
  void reset() noexcept {
    count_ = 0;
    prev_ = opts_.base;
  }

 private:
  Options opts_;
  Xoshiro256 rng_;
  std::chrono::nanoseconds prev_;
  int count_ = 0;
};

/// Outcome of a bounded wait.
enum class WaitStatus {
  kReady,      // the awaited condition became true
  kTimeout,    // the deadline passed first
  kCancelled,  // the external cancel flag was raised first
};

[[nodiscard]] constexpr const char* to_string(WaitStatus s) noexcept {
  switch (s) {
    case WaitStatus::kReady: return "ready";
    case WaitStatus::kTimeout: return "timeout";
    case WaitStatus::kCancelled: return "cancelled";
  }
  return "?";
}

/// Bound on a wait: an absolute deadline and/or an external cancel flag
/// (raised by a peer to break the whole waiting cohort at once). The
/// default-constructed context is unbounded — it behaves like the plain
/// SpinWait and never reports kTimeout/kCancelled.
struct WaitContext {
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  const std::atomic<bool>* cancel = nullptr;

  /// Context expiring `timeout` from now.
  static WaitContext after(std::chrono::nanoseconds timeout,
                           const std::atomic<bool>* cancel_flag = nullptr) {
    return WaitContext{std::chrono::steady_clock::now() + timeout, cancel_flag};
  }

  [[nodiscard]] bool bounded() const noexcept {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

/// Escalating waiter with a deadline: pause bursts, then yields, then
/// short sleeps whose length doubles per round (capped so the deadline
/// is not badly overshot). The clock is only consulted once per round
/// after the relax burst, so the satisfied-quickly path stays cheap.
class DeadlineSpinWait {
 public:
  explicit DeadlineSpinWait(const WaitContext& ctx, int spin_limit = 64,
                            int yield_limit = 64) noexcept
      : ctx_(ctx), spin_limit_(spin_limit), yield_limit_(yield_limit) {}

  /// One escalation round. Returns kReady to keep waiting, or the
  /// terminal condition observed.
  WaitStatus wait() noexcept {
    if (ctx_.cancel && ctx_.cancel->load(std::memory_order_acquire))
      return WaitStatus::kCancelled;
    if (count_ < spin_limit_) {
      for (int i = 0; i < (1 << (count_ < 6 ? count_ : 6)); ++i) cpu_relax();
    } else if (count_ < spin_limit_ + yield_limit_) {
      std::this_thread::yield();
    } else {
      // Short sleeps, 8 us doubling to 512 us: late waiters stop burning
      // the host, while timeouts stay sub-millisecond-accurate.
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      if (sleep_us_ < 512) sleep_us_ *= 2;
    }
    ++count_;
    if (ctx_.bounded() && std::chrono::steady_clock::now() >= ctx_.deadline)
      return WaitStatus::kTimeout;
    return WaitStatus::kReady;
  }

  void reset() noexcept {
    count_ = 0;
    sleep_us_ = 8;
  }

 private:
  WaitContext ctx_;
  int spin_limit_;
  int yield_limit_;
  int count_ = 0;
  int sleep_us_ = 8;
};

/// Bounded spin: wait for `pred()` subject to `ctx`. The predicate is
/// re-checked one final time after a timeout/cancel fires, so a
/// condition that becomes true concurrently with the bound always wins
/// (a released waiter is never misreported as timed out).
template <typename Pred>
WaitStatus spin_until(Pred&& pred, const WaitContext& ctx) {
  DeadlineSpinWait w(ctx);
  while (!pred()) {
    const WaitStatus s = w.wait();
    if (s != WaitStatus::kReady) return pred() ? WaitStatus::kReady : s;
  }
  return WaitStatus::kReady;
}

/// Bounded spin with a relative timeout (convenience over spin_until).
template <typename Pred>
WaitStatus spin_until_for(Pred&& pred, std::chrono::nanoseconds timeout,
                          const std::atomic<bool>* cancel = nullptr) {
  return spin_until(static_cast<Pred&&>(pred), WaitContext::after(timeout, cancel));
}

}  // namespace imbar
