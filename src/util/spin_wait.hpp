// Adaptive spin-wait for busy-wait loops.
//
// Barrier wait loops run on anything from a dedicated core to a heavily
// oversubscribed host (this project's CI runs on a single core with up
// to 8 worker threads). A naive `while (!flag) {}` live-locks the
// sched-quantum away in that regime, so the policy here is: a short
// burst of pause instructions, then escalate to std::this_thread::yield.
//
// Two waiting modes:
//   * SpinWait / spin_until — unbounded, zero bookkeeping: the classic
//     hot path for barriers whose peers are known to be alive.
//   * DeadlineSpinWait / spin_until(pred, WaitContext) — deadline- and
//     cancellation-aware: pause -> yield -> short sleeps with
//     exponential backoff, reporting kTimeout/kCancelled instead of
//     spinning forever. This is the substrate of imbar::robust.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace imbar {

/// Issue one CPU relax hint (PAUSE on x86, ISB-ish fallback elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Portable fallback: a compiler barrier so the loop load is re-issued.
  asm volatile("" ::: "memory");
#endif
}

/// Escalating waiter: pause for the first `spin_limit` rounds, then
/// yield the time slice on every round. Reset per wait episode.
class SpinWait {
 public:
  explicit SpinWait(int spin_limit = 64) noexcept : spin_limit_(spin_limit) {}

  void wait() noexcept {
    if (count_ < spin_limit_) {
      // Exponentially growing pause bursts: 1, 2, 4, ... relax hints.
      for (int i = 0; i < (1 << (count_ < 6 ? count_ : 6)); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  int spin_limit_;
  int count_ = 0;
};

/// Spin until `pred()` is true, yielding politely under oversubscription.
template <typename Pred>
void spin_until(Pred&& pred) {
  SpinWait w;
  while (!pred()) w.wait();
}

/// Outcome of a bounded wait.
enum class WaitStatus {
  kReady,      // the awaited condition became true
  kTimeout,    // the deadline passed first
  kCancelled,  // the external cancel flag was raised first
};

[[nodiscard]] constexpr const char* to_string(WaitStatus s) noexcept {
  switch (s) {
    case WaitStatus::kReady: return "ready";
    case WaitStatus::kTimeout: return "timeout";
    case WaitStatus::kCancelled: return "cancelled";
  }
  return "?";
}

/// Bound on a wait: an absolute deadline and/or an external cancel flag
/// (raised by a peer to break the whole waiting cohort at once). The
/// default-constructed context is unbounded — it behaves like the plain
/// SpinWait and never reports kTimeout/kCancelled.
struct WaitContext {
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  const std::atomic<bool>* cancel = nullptr;

  /// Context expiring `timeout` from now.
  static WaitContext after(std::chrono::nanoseconds timeout,
                           const std::atomic<bool>* cancel_flag = nullptr) {
    return WaitContext{std::chrono::steady_clock::now() + timeout, cancel_flag};
  }

  [[nodiscard]] bool bounded() const noexcept {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

/// Escalating waiter with a deadline: pause bursts, then yields, then
/// short sleeps whose length doubles per round (capped so the deadline
/// is not badly overshot). The clock is only consulted once per round
/// after the relax burst, so the satisfied-quickly path stays cheap.
class DeadlineSpinWait {
 public:
  explicit DeadlineSpinWait(const WaitContext& ctx, int spin_limit = 64,
                            int yield_limit = 64) noexcept
      : ctx_(ctx), spin_limit_(spin_limit), yield_limit_(yield_limit) {}

  /// One escalation round. Returns kReady to keep waiting, or the
  /// terminal condition observed.
  WaitStatus wait() noexcept {
    if (ctx_.cancel && ctx_.cancel->load(std::memory_order_acquire))
      return WaitStatus::kCancelled;
    if (count_ < spin_limit_) {
      for (int i = 0; i < (1 << (count_ < 6 ? count_ : 6)); ++i) cpu_relax();
    } else if (count_ < spin_limit_ + yield_limit_) {
      std::this_thread::yield();
    } else {
      // Short sleeps, 8 us doubling to 512 us: late waiters stop burning
      // the host, while timeouts stay sub-millisecond-accurate.
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      if (sleep_us_ < 512) sleep_us_ *= 2;
    }
    ++count_;
    if (ctx_.bounded() && std::chrono::steady_clock::now() >= ctx_.deadline)
      return WaitStatus::kTimeout;
    return WaitStatus::kReady;
  }

  void reset() noexcept {
    count_ = 0;
    sleep_us_ = 8;
  }

 private:
  WaitContext ctx_;
  int spin_limit_;
  int yield_limit_;
  int count_ = 0;
  int sleep_us_ = 8;
};

/// Bounded spin: wait for `pred()` subject to `ctx`. The predicate is
/// re-checked one final time after a timeout/cancel fires, so a
/// condition that becomes true concurrently with the bound always wins
/// (a released waiter is never misreported as timed out).
template <typename Pred>
WaitStatus spin_until(Pred&& pred, const WaitContext& ctx) {
  DeadlineSpinWait w(ctx);
  while (!pred()) {
    const WaitStatus s = w.wait();
    if (s != WaitStatus::kReady) return pred() ? WaitStatus::kReady : s;
  }
  return WaitStatus::kReady;
}

/// Bounded spin with a relative timeout (convenience over spin_until).
template <typename Pred>
WaitStatus spin_until_for(Pred&& pred, std::chrono::nanoseconds timeout,
                          const std::atomic<bool>* cancel = nullptr) {
  return spin_until(static_cast<Pred&&>(pred), WaitContext::after(timeout, cancel));
}

}  // namespace imbar
