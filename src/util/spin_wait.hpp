// Adaptive spin-wait for busy-wait loops.
//
// Barrier wait loops run on anything from a dedicated core to a heavily
// oversubscribed host (this project's CI runs on a single core with up
// to 8 worker threads). A naive `while (!flag) {}` live-locks the
// sched-quantum away in that regime, so the policy here is: a short
// burst of pause instructions, then escalate to std::this_thread::yield.
#pragma once

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace imbar {

/// Issue one CPU relax hint (PAUSE on x86, ISB-ish fallback elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Portable fallback: a compiler barrier so the loop load is re-issued.
  asm volatile("" ::: "memory");
#endif
}

/// Escalating waiter: pause for the first `spin_limit` rounds, then
/// yield the time slice on every round. Reset per wait episode.
class SpinWait {
 public:
  explicit SpinWait(int spin_limit = 64) noexcept : spin_limit_(spin_limit) {}

  void wait() noexcept {
    if (count_ < spin_limit_) {
      // Exponentially growing pause bursts: 1, 2, 4, ... relax hints.
      for (int i = 0; i < (1 << (count_ < 6 ? count_ : 6)); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  int spin_limit_;
  int count_ = 0;
};

/// Spin until `pred()` is true, yielding politely under oversubscription.
template <typename Pred>
void spin_until(Pred&& pred) {
  SpinWait w;
  while (!pred()) w.wait();
}

}  // namespace imbar
