// Monotonic wall-clock stopwatch (microsecond resolution helpers).
#pragma once

#include <chrono>

namespace imbar {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_us() / 1000.0; }
  [[nodiscard]] double elapsed_s() const noexcept { return elapsed_us() / 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace imbar
