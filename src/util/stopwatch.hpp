// Monotonic wall-clock stopwatch (microsecond resolution helpers),
// plus scoped phase timing for the bench reporters.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace imbar {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_us() / 1000.0; }
  [[nodiscard]] double elapsed_s() const noexcept { return elapsed_us() / 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations. Phases are recorded by
/// ScopedPhaseTimer; nesting produces '/'-joined names ("run/warmup").
/// Single-threaded by design — one log per bench binary.
class PhaseLog {
 public:
  struct Phase {
    std::string name;
    double elapsed_s;
  };

  [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
    return entries_;
  }

 private:
  friend class ScopedPhaseTimer;

  std::vector<Phase> entries_;
  std::vector<std::string> stack_;  // open phase names, outermost first
};

/// RAII phase timer: pushes its name onto the log's nesting stack on
/// construction, records "<outer>/<inner>" with the elapsed monotonic
/// time on destruction. Phases close in LIFO order (enforced by scope).
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseLog& log, std::string name) : log_(log) {
    std::string full;
    for (const std::string& outer : log_.stack_) {
      full += outer;
      full += '/';
    }
    full += name;
    log_.stack_.push_back(std::move(name));
    full_name_ = std::move(full);
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  ~ScopedPhaseTimer() {
    log_.stack_.pop_back();
    log_.entries_.push_back({std::move(full_name_), watch_.elapsed_s()});
  }

 private:
  PhaseLog& log_;
  std::string full_name_;
  Stopwatch watch_;
};

}  // namespace imbar
