#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace imbar {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (cells_.empty()) cells_.emplace_back();
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::num(double v, int precision) { return add(fmt(v, precision)); }

Table& Table::num(long long v) { return add(std::to_string(v)); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != 'e' &&
        c != 'x' && c != '%')
      return false;
  }
  return true;
}
}  // namespace

std::string Table::str(int indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream out;

  auto emit = [&](const std::vector<std::string>& row) {
    out << pad;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const std::size_t fill = width[c] - cell.size();
      if (looks_numeric(cell)) {
        out << std::string(fill, ' ') << cell;  // right-align numbers
      } else {
        out << cell << std::string(fill, ' ');
      }
      if (c + 1 < headers_.size()) out << "  ";
    }
    out << '\n';
  };

  emit(headers_);
  out << pad;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c], '-');
    if (c + 1 < headers_.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : cells_) emit(row);
  return out.str();
}

std::string banner(const std::string& title, int width) {
  std::string s = "== " + title + " ";
  if (static_cast<int>(s.size()) < width)
    s += std::string(static_cast<std::size_t>(width) - s.size(), '=');
  return s;
}

}  // namespace imbar
