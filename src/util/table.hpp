// Aligned ASCII table rendering for benchmark output.
//
// Every bench binary prints paper-shaped tables; this keeps their
// formatting consistent and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace imbar {

/// Column-aligned plain-text table. Cells are strings; numeric helpers
/// format with fixed precision. Rendered with a header rule and
/// right-aligned numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add()/num() calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& num(double v, int precision = 2);
  Table& num(long long v);

  /// Render the full table, `indent` spaces before each line.
  [[nodiscard]] std::string str(int indent = 2) const;

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

  /// Format a double with fixed precision (shared helper).
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Print a section banner: `== title ==================`.
std::string banner(const std::string& title, int width = 72);

}  // namespace imbar
