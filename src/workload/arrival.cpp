#include "workload/arrival.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace imbar {

IidGenerator::IidGenerator(std::size_t procs, std::unique_ptr<Sampler> sampler,
                           std::uint64_t seed)
    : p_(procs), sampler_(std::move(sampler)), rng_(seed) {
  if (p_ == 0) throw std::invalid_argument("IidGenerator: procs == 0");
  if (!sampler_) throw std::invalid_argument("IidGenerator: null sampler");
}

void IidGenerator::generate(std::size_t /*iteration*/, std::span<double> out) {
  if (out.size() != p_) throw std::invalid_argument("generate: span size mismatch");
  for (auto& w : out) w = sampler_->sample(rng_);
}

SystemicGenerator::SystemicGenerator(std::size_t procs, double mean,
                                     double sigma_bias, double sigma_noise,
                                     std::uint64_t seed)
    : p_(procs),
      mean_(mean),
      sigma_noise_(sigma_noise),
      sigma_bias_(sigma_bias),
      rng_(seed),
      noise_(0.0, sigma_noise) {
  if (p_ == 0) throw std::invalid_argument("SystemicGenerator: procs == 0");
  NormalSampler bias_sampler(0.0, sigma_bias);
  bias_.resize(p_);
  for (auto& b : bias_) b = bias_sampler.sample(rng_);
}

void SystemicGenerator::generate(std::size_t /*iteration*/, std::span<double> out) {
  if (out.size() != p_) throw std::invalid_argument("generate: span size mismatch");
  for (std::size_t i = 0; i < p_; ++i)
    out[i] = mean_ + bias_[i] + noise_.sample(rng_);
}

double SystemicGenerator::nominal_stddev() const noexcept {
  return std::sqrt(sigma_bias_ * sigma_bias_ + sigma_noise_ * sigma_noise_);
}

EvolvingGenerator::EvolvingGenerator(std::size_t procs, double mean,
                                     double sigma_bias, double sigma_noise,
                                     double rho, std::uint64_t seed)
    : p_(procs),
      mean_(mean),
      sigma_bias_(sigma_bias),
      sigma_noise_(sigma_noise),
      rho_(rho),
      rng_(seed),
      unit_(0.0, 1.0) {
  if (p_ == 0) throw std::invalid_argument("EvolvingGenerator: procs == 0");
  if (rho < 0.0 || rho > 1.0)
    throw std::invalid_argument("EvolvingGenerator: rho must be in [0,1]");
  bias_.resize(p_);
  // Start from the stationary distribution so iteration 0 is typical.
  for (auto& b : bias_) b = sigma_bias_ * unit_.sample(rng_);
}

void EvolvingGenerator::generate(std::size_t /*iteration*/, std::span<double> out) {
  if (out.size() != p_) throw std::invalid_argument("generate: span size mismatch");
  const double innov = sigma_bias_ * std::sqrt(1.0 - rho_ * rho_);
  for (std::size_t i = 0; i < p_; ++i) {
    bias_[i] = rho_ * bias_[i] + innov * unit_.sample(rng_);
    out[i] = mean_ + bias_[i] + sigma_noise_ * unit_.sample(rng_);
  }
}

double EvolvingGenerator::nominal_stddev() const noexcept {
  return std::sqrt(sigma_bias_ * sigma_bias_ + sigma_noise_ * sigma_noise_);
}

RecordedGenerator::RecordedGenerator(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  if (rows_.empty() || rows_.front().empty())
    throw std::invalid_argument("RecordedGenerator: empty recording");
  p_ = rows_.front().size();
  RunningStats rs;
  for (const auto& row : rows_) {
    if (row.size() != p_)
      throw std::invalid_argument("RecordedGenerator: ragged recording");
    for (double w : row) rs.add(w);
  }
  mean_ = rs.mean();
  sd_ = rs.stddev();
}

void RecordedGenerator::generate(std::size_t iteration, std::span<double> out) {
  if (iteration >= rows_.size())
    throw std::out_of_range("RecordedGenerator: iteration beyond recording");
  if (out.size() != p_) throw std::invalid_argument("generate: span size mismatch");
  const auto& row = rows_[iteration];
  std::copy(row.begin(), row.end(), out.begin());
}

RecordedGenerator record(ArrivalGenerator& gen, std::size_t iterations) {
  std::vector<std::vector<double>> rows(iterations,
                                        std::vector<double>(gen.procs()));
  for (std::size_t i = 0; i < iterations; ++i) rows[i] = [&] {
    std::vector<double> row(gen.procs());
    gen.generate(i, row);
    return row;
  }();
  return RecordedGenerator(std::move(rows));
}

}  // namespace imbar
