// Per-iteration processor work-time generators (the load imbalance).
//
// The paper distinguishes (Section 1):
//   * non-deterministic imbalance — iid noise, the last processor
//     changes every iteration (IidGenerator);
//   * systemic imbalance — uneven partitioning, the same processors are
//     consistently late (SystemicGenerator);
//   * evolving imbalance — the workload drifts slowly from iteration to
//     iteration (EvolvingGenerator, an AR(1) bias per processor).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dist/samplers.hpp"
#include "util/prng.hpp"

namespace imbar {

/// Produces the work time W_p(i) of every processor for iteration i.
/// Implementations are deterministic given their seed.
class ArrivalGenerator {
 public:
  virtual ~ArrivalGenerator() = default;

  [[nodiscard]] virtual std::size_t procs() const noexcept = 0;

  /// Fill `out` (size == procs()) with this iteration's work times.
  /// Must be called with strictly increasing `iteration` values.
  virtual void generate(std::size_t iteration, std::span<double> out) = 0;

  /// Nominal mean work time (for reporting).
  [[nodiscard]] virtual double nominal_mean() const noexcept = 0;
  /// Nominal per-iteration standard deviation across processors.
  [[nodiscard]] virtual double nominal_stddev() const noexcept = 0;
};

/// iid draws from a given distribution shape each iteration.
class IidGenerator final : public ArrivalGenerator {
 public:
  IidGenerator(std::size_t procs, std::unique_ptr<Sampler> sampler,
               std::uint64_t seed);

  [[nodiscard]] std::size_t procs() const noexcept override { return p_; }
  void generate(std::size_t iteration, std::span<double> out) override;
  [[nodiscard]] double nominal_mean() const noexcept override {
    return sampler_->mean();
  }
  [[nodiscard]] double nominal_stddev() const noexcept override {
    return sampler_->stddev();
  }

 private:
  std::size_t p_;
  std::unique_ptr<Sampler> sampler_;
  Xoshiro256 rng_;
};

/// Per-processor constant bias (drawn once, N(0, sigma_bias)) plus iid
/// noise (N(0, sigma_noise)): systemic imbalance.
class SystemicGenerator final : public ArrivalGenerator {
 public:
  SystemicGenerator(std::size_t procs, double mean, double sigma_bias,
                    double sigma_noise, std::uint64_t seed);

  [[nodiscard]] std::size_t procs() const noexcept override { return p_; }
  void generate(std::size_t iteration, std::span<double> out) override;
  [[nodiscard]] double nominal_mean() const noexcept override { return mean_; }
  [[nodiscard]] double nominal_stddev() const noexcept override;

  [[nodiscard]] std::span<const double> biases() const noexcept { return bias_; }

 private:
  std::size_t p_;
  double mean_, sigma_noise_, sigma_bias_;
  std::vector<double> bias_;
  Xoshiro256 rng_;
  NormalSampler noise_;
};

/// AR(1) evolving bias: b_p(i+1) = rho*b_p(i) + sqrt(1-rho^2)*eta,
/// eta ~ N(0, sigma_bias); stationary marginal N(0, sigma_bias).
/// rho close to 1 models slowly drifting workload.
class EvolvingGenerator final : public ArrivalGenerator {
 public:
  EvolvingGenerator(std::size_t procs, double mean, double sigma_bias,
                    double sigma_noise, double rho, std::uint64_t seed);

  [[nodiscard]] std::size_t procs() const noexcept override { return p_; }
  void generate(std::size_t iteration, std::span<double> out) override;
  [[nodiscard]] double nominal_mean() const noexcept override { return mean_; }
  [[nodiscard]] double nominal_stddev() const noexcept override;

 private:
  std::size_t p_;
  double mean_, sigma_bias_, sigma_noise_, rho_;
  std::vector<double> bias_;
  Xoshiro256 rng_;
  NormalSampler unit_;
};

/// Replays a fixed (iterations x procs) matrix; for tests and for
/// running static vs dynamic placement on identical inputs.
class RecordedGenerator final : public ArrivalGenerator {
 public:
  explicit RecordedGenerator(std::vector<std::vector<double>> rows);

  [[nodiscard]] std::size_t procs() const noexcept override { return p_; }
  void generate(std::size_t iteration, std::span<double> out) override;
  [[nodiscard]] double nominal_mean() const noexcept override { return mean_; }
  [[nodiscard]] double nominal_stddev() const noexcept override { return sd_; }

  [[nodiscard]] std::size_t iterations() const noexcept { return rows_.size(); }

 private:
  std::vector<std::vector<double>> rows_;
  std::size_t p_;
  double mean_, sd_;
};

/// Record `iterations` rows from any generator into a RecordedGenerator
/// so the identical workload can be replayed against several barriers.
RecordedGenerator record(ArrivalGenerator& gen, std::size_t iterations);

}  // namespace imbar
