// FuzzyTimeline is header-only; this TU anchors the library target and
// hosts the (intentionally empty) out-of-line pieces.
#include "workload/fuzzy.hpp"

namespace imbar {
// No out-of-line definitions needed.
}  // namespace imbar
