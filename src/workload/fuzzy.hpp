// Fuzzy-barrier timeline (Gupta's fuzzy barriers, paper Section 5).
//
// A fuzzy barrier splits the barrier into a *signal* (release phase) and
// an *enforce* point, with S units of independent (slack) work scheduled
// between them. A processor therefore restarts its next dependent phase
// at
//     start_p(i+1) = max(signal_p(i) + S, release(i)).
//
// This carry-over is the mechanism behind the paper's Figure 5
// observation: with S = 0 every processor restarts at release(i), so
// next-iteration arrival order is fresh noise; with large S a late
// processor stays late, making history-based (dynamic) placement
// effective.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace imbar {

class FuzzyTimeline {
 public:
  /// All processors start their first iteration at time 0.
  FuzzyTimeline(std::size_t procs, double slack)
      : slack_(slack), start_(procs, 0.0), signal_(procs, 0.0) {
    if (procs == 0) throw std::invalid_argument("FuzzyTimeline: procs == 0");
    if (slack < 0.0) throw std::invalid_argument("FuzzyTimeline: negative slack");
  }

  [[nodiscard]] std::size_t procs() const noexcept { return start_.size(); }
  [[nodiscard]] double slack() const noexcept { return slack_; }

  /// Compute this iteration's barrier arrival (signal) times from the
  /// per-processor work times; returns a view of the signal vector.
  std::span<const double> signals(std::span<const double> work) {
    if (work.size() != start_.size())
      throw std::invalid_argument("FuzzyTimeline: work size mismatch");
    for (std::size_t p = 0; p < start_.size(); ++p)
      signal_[p] = start_[p] + work[p];
    return signal_;
  }

  /// Advance past the barrier released at absolute time `release`:
  /// each processor resumes dependent work at max(signal + slack,
  /// release). `release` must be >= every signal (a barrier cannot
  /// release before its last arrival).
  void advance(double release) {
    for (std::size_t p = 0; p < start_.size(); ++p) {
      const double resume = signal_[p] + slack_;
      start_[p] = resume > release ? resume : release;
    }
  }

  /// Per-processor start times of the upcoming iteration.
  [[nodiscard]] std::span<const double> starts() const noexcept { return start_; }
  /// Signal times of the latest signals() call.
  [[nodiscard]] std::span<const double> last_signals() const noexcept {
    return signal_;
  }

 private:
  double slack_;
  std::vector<double> start_;
  std::vector<double> signal_;
};

}  // namespace imbar
