#include "workload/sor_model.hpp"

#include <cmath>
#include <stdexcept>

namespace imbar {

std::size_t sor_comm_events(const SorModelParams& p) noexcept {
  return 4 * ((p.dy + p.subline - 1) / p.subline);
}

double sor_predicted_mean_us(const SorModelParams& p) noexcept {
  const double compute =
      static_cast<double>(p.dx_per_proc) * static_cast<double>(p.dy) * p.t_flop_us;
  return compute + static_cast<double>(sor_comm_events(p)) *
                       (p.t_comm_us + p.sigma_evt_us);
}

double sor_predicted_sigma_us(const SorModelParams& p) noexcept {
  return std::sqrt(static_cast<double>(sor_comm_events(p))) * p.sigma_evt_us;
}

SorWorkloadModel::SorWorkloadModel(const SorModelParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.procs == 0 || params_.dy == 0 || params_.subline == 0)
    throw std::invalid_argument("SorWorkloadModel: zero-sized parameter");
  compute_us_ = static_cast<double>(params_.dx_per_proc) *
                static_cast<double>(params_.dy) * params_.t_flop_us;
  n_events_ = sor_comm_events(params_);
}

void SorWorkloadModel::generate(std::size_t /*iteration*/, std::span<double> out) {
  if (out.size() != params_.procs)
    throw std::invalid_argument("SorWorkloadModel: span size mismatch");
  for (auto& w : out) {
    double comm = 0.0;
    for (std::size_t e = 0; e < n_events_; ++e) {
      // Exponential contention tail on each communication event.
      comm += params_.t_comm_us - params_.sigma_evt_us * std::log(rng_.uniform_open());
    }
    w = compute_us_ + comm;
  }
}

}  // namespace imbar
