// SOR workload model: the KSR1 substitute for paper Section 7.
//
// The paper measures a red/black SOR relaxation on a 56-processor KSR1:
// the (d_x, d_y) grid is partitioned along x, giving each processor
// 4 * ceil(d_y / 16) communication events per iteration (16 = KSR1 cache
// sub-line size). Communication incurs random contention delays, so the
// per-iteration execution time variance grows with d_y — which is how
// the paper sweeps sigma in Figure 12.
//
// We model each iteration's work time per processor as
//     W = compute + sum over comm events of (t_comm + Exp(sigma_evt)),
// which makes W approximately normal (sum of many iid terms) with
//     mean  = compute + n_evt * (t_comm + sigma_evt)
//     sigma = sqrt(n_evt) * sigma_evt.
// The default constants are calibrated so d_y = 210 reproduces the
// paper's measured 9.5 ms mean and 110 us standard deviation.
#pragma once

#include <cstdint>
#include <memory>

#include "workload/arrival.hpp"

namespace imbar {

struct SorModelParams {
  std::size_t procs = 56;        // paper: 56 of the KSR1's 64 processors
  std::size_t dx_per_proc = 60;  // data points per processor along x
  std::size_t dy = 210;          // y-dimension (the Figure 12 sweep axis)
  std::size_t subline = 16;      // KSR1 cache sub-line size
  double t_flop_us = 0.578;      // per-point update cost (calibrated)
  double t_comm_us = 25.0;       // deterministic part of one comm event
  double sigma_evt_us = 14.7;    // stochastic part (exponential mean/sd)
};

/// Number of communication events per processor per iteration:
/// 4 * ceil(dy / subline) (paper Section 7).
[[nodiscard]] std::size_t sor_comm_events(const SorModelParams& p) noexcept;

/// Model-predicted mean iteration time (us).
[[nodiscard]] double sor_predicted_mean_us(const SorModelParams& p) noexcept;

/// Model-predicted per-iteration stddev across processors (us).
[[nodiscard]] double sor_predicted_sigma_us(const SorModelParams& p) noexcept;

/// Arrival generator drawing each processor's iteration time from the
/// SOR model.
class SorWorkloadModel final : public ArrivalGenerator {
 public:
  SorWorkloadModel(const SorModelParams& params, std::uint64_t seed);

  [[nodiscard]] std::size_t procs() const noexcept override {
    return params_.procs;
  }
  void generate(std::size_t iteration, std::span<double> out) override;
  [[nodiscard]] double nominal_mean() const noexcept override {
    return sor_predicted_mean_us(params_);
  }
  [[nodiscard]] double nominal_stddev() const noexcept override {
    return sor_predicted_sigma_us(params_);
  }

  [[nodiscard]] const SorModelParams& params() const noexcept { return params_; }

 private:
  SorModelParams params_;
  double compute_us_;
  std::size_t n_events_;
  Xoshiro256 rng_;
};

}  // namespace imbar
