#include "workload/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"

namespace imbar {

std::size_t save_trace_csv(const std::string& path, ArrivalGenerator& gen,
                           std::size_t iterations) {
  std::vector<std::string> header;
  header.reserve(gen.procs());
  for (std::size_t p = 0; p < gen.procs(); ++p)
    header.push_back("p" + std::to_string(p));
  CsvWriter writer(path, header);

  std::vector<double> row(gen.procs());
  for (std::size_t i = 0; i < iterations; ++i) {
    gen.generate(i, row);
    writer.write_row_numeric(row, 12);
  }
  return writer.rows_written();
}

RecordedGenerator load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_csv: cannot open " + path);

  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("load_trace_csv: empty file " + path);
  // Column count from the header.
  std::size_t cols = 1;
  for (char c : line) cols += (c == ',');

  std::vector<std::vector<double>> rows;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<double> row;
    row.reserve(cols);
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str())
        throw std::runtime_error("load_trace_csv: non-numeric cell at line " +
                                 std::to_string(lineno));
      row.push_back(v);
    }
    if (row.size() != cols)
      throw std::runtime_error("load_trace_csv: ragged row at line " +
                               std::to_string(lineno));
    rows.push_back(std::move(row));
  }
  if (rows.empty())
    throw std::runtime_error("load_trace_csv: no data rows in " + path);
  return RecordedGenerator(std::move(rows));
}

}  // namespace imbar
