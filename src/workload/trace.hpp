// Trace-driven workloads: save and load per-iteration execution-time
// matrices as CSV, so measured traces from real applications can be
// replayed through the simulator (episode runner, placement
// comparisons, degree sweeps).
//
// Format: a header row `p0,p1,...,pN-1` followed by one row per
// iteration with that iteration's per-processor work times.
#pragma once

#include <string>

#include "workload/arrival.hpp"

namespace imbar {

/// Write `iterations` rows drawn from `gen` to `path`.
/// Returns the number of iterations written.
std::size_t save_trace_csv(const std::string& path, ArrivalGenerator& gen,
                           std::size_t iterations);

/// Load a trace written by save_trace_csv (or produced by any external
/// tool using the same layout). Throws std::runtime_error on I/O or
/// format errors (missing file, ragged rows, non-numeric cells).
RecordedGenerator load_trace_csv(const std::string& path);

}  // namespace imbar
