// Shared support for the real-thread barrier tests.
//
// Every barrier test drives a pool of threads through blocking
// synchronization; a correctness bug therefore shows up as a *hang*,
// which under plain ctest surfaces as an opaque timeout with no clue
// which thread was stuck. run_threads here wraps the pool in a
// deadlock watchdog: if the body threads fail to finish within the
// timeout it prints which tids are still inside and exits the process.
// (_Exit, not an exception: a thread spinning in a barrier wait cannot
// be interrupted portably, so the process is unrecoverable anyway —
// better a fast failure with a diagnostic than a silent 1500 s stall.)
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace imbar::test {

inline constexpr std::chrono::seconds kWatchdogTimeout{120};

inline void run_threads(std::size_t n,
                        const std::function<void(std::size_t)>& body,
                        std::chrono::seconds timeout = kWatchdogTimeout) {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t finished = 0;
  std::vector<bool> tid_done(n, false);

  std::vector<std::thread> pool;
  pool.reserve(n);
  for (std::size_t t = 0; t < n; ++t)
    pool.emplace_back([&, t] {
      body(t);
      const std::lock_guard<std::mutex> lk(mu);
      tid_done[t] = true;
      ++finished;
      cv.notify_all();
    });

  {
    std::unique_lock<std::mutex> lk(mu);
    if (!cv.wait_for(lk, timeout, [&] { return finished == n; })) {
      std::fprintf(stderr,
                   "[watchdog] barrier test hung: %zu/%zu threads finished "
                   "after %lld s; stuck tids:",
                   finished, n, static_cast<long long>(timeout.count()));
      for (std::size_t t = 0; t < n; ++t)
        if (!tid_done[t]) std::fprintf(stderr, " %zu", t);
      std::fprintf(stderr, "\n");
      std::fflush(stderr);
      std::_Exit(124);
    }
  }
  for (auto& th : pool) th.join();
}

}  // namespace imbar::test
