// Adaptive-degree barrier: run-time degree selection (the paper's
// future-work feature).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "barrier/adaptive_barrier.hpp"

#include "barrier_test_support.hpp"

namespace imbar {
namespace {

using test::run_threads;

TEST(AdaptiveBarrier, StartsAtInitialDegree) {
  AdaptiveBarrier::Options opt;
  opt.initial_degree = 4;
  AdaptiveBarrier bar(8, opt);
  EXPECT_EQ(bar.current_degree(), 4u);
  EXPECT_EQ(bar.rebuilds(), 0u);
  EXPECT_DOUBLE_EQ(bar.estimated_sigma_us(), 0.0);
}

TEST(AdaptiveBarrier, OptionClamping) {
  AdaptiveBarrier::Options opt;
  opt.initial_degree = 0;  // clamped to 2
  opt.window = 0;          // clamped to 1
  opt.max_degree = 1000;   // clamped to participants
  AdaptiveBarrier bar(4, opt);
  EXPECT_EQ(bar.current_degree(), 2u);
}

TEST(AdaptiveBarrier, Validation) {
  EXPECT_THROW(AdaptiveBarrier(0), std::invalid_argument);
}

TEST(AdaptiveBarrier, BasicSynchronizationWorks) {
  AdaptiveBarrier bar(6);
  run_threads(6, [&](std::size_t tid) {
    for (int i = 0; i < 200; ++i) bar.arrive_and_wait(tid);
  });
  EXPECT_EQ(bar.counters().episodes, 200u);
}

TEST(AdaptiveBarrier, WideImbalanceWidensTheTree) {
  // One thread is dramatically slower than the rest (sigma far above
  // t_c): the model must push the degree wide.
  AdaptiveBarrier::Options opt;
  opt.initial_degree = 2;
  opt.window = 8;
  opt.t_c_us = 1.0;  // declare counter updates cheap vs the imbalance
  AdaptiveBarrier bar(8, opt);
  run_threads(8, [&](std::size_t tid) {
    for (int i = 0; i < 120; ++i) {
      if (tid == 7)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      bar.arrive_and_wait(tid);
    }
  });
  EXPECT_GT(bar.rebuilds(), 0u);
  EXPECT_GT(bar.current_degree(), 2u);
  EXPECT_GT(bar.estimated_sigma_us(), opt.t_c_us);
  EXPECT_EQ(bar.counters().episodes, 120u);
}

TEST(AdaptiveBarrier, SigmaEstimateIsMeasured) {
  AdaptiveBarrier::Options opt;
  opt.window = 4;
  AdaptiveBarrier bar(4, opt);
  run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 20; ++i) {
      if (tid == 3)
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      bar.arrive_and_wait(tid);
    }
  });
  // One slow thread out of 4 by ~500us: sigma should be in the
  // hundreds of microseconds.
  EXPECT_GT(bar.estimated_sigma_us(), 50.0);
}

TEST(AdaptiveBarrier, RebuildPreservesCorrectness) {
  // Hammer the rebuild path (tiny window, alternating imbalance) while
  // checking the phase-consistency property.
  AdaptiveBarrier::Options opt;
  opt.window = 4;
  opt.t_c_us = 1.0;
  opt.hysteresis = 1.0;  // rebuild eagerly
  AdaptiveBarrier bar(5, opt);
  std::vector<std::atomic<int>> phase(5);
  std::atomic<bool> violation{false};
  run_threads(5, [&](std::size_t tid) {
    for (int p = 1; p <= 300; ++p) {
      if (tid == static_cast<std::size_t>(p / 40) % 5 && p % 3 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      phase[tid].store(p, std::memory_order_release);
      bar.arrive_and_wait(tid);
      for (auto& ph : phase)
        if (ph.load(std::memory_order_acquire) < p) violation.store(true);
      bar.arrive_and_wait(tid);
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(bar.counters().episodes, 600u);
}

TEST(AdaptiveBarrier, MeasureTcIsPositiveAndSane) {
  const double tc = AdaptiveBarrier::measure_tc_us();
  EXPECT_GT(tc, 0.0);
  EXPECT_LT(tc, 100.0);  // an atomic RMW is well under 100us anywhere
}

TEST(AdaptiveBarrier, QuiescentSignalReadsAreRaceFree) {
  // Regression for the releaser-only read contract (docs/barriers.md):
  // spread()/signal() may only be read while no thread is arriving.
  // This test exercises the *legal* pattern — join the cohort, then
  // read — so the nightly TSan leg proves quiescent reads race with
  // nothing. (estimated_sigma_us() is the atomic any-thread mirror and
  // is also read here for agreement.)
  AdaptiveBarrier::Options opt;
  opt.window = 4;
  AdaptiveBarrier bar(4, opt);
  run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 60; ++i) {
      if (tid == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      bar.arrive_and_wait(tid);
    }
  });
  // The estimator resets per adaptation window, so its episode count
  // reflects the current window's samples, not the barrier's lifetime —
  // the snapshot must agree with the estimator it mirrors.
  const auto& spread = bar.spread();
  EXPECT_GT(spread.episodes(), 0u);
  const control::SignalSnapshot sig = bar.signal();
  EXPECT_EQ(sig.episodes, spread.episodes());
  EXPECT_DOUBLE_EQ(sig.sigma_us, spread.last_sigma_us());
  // The atomic mirror tracks the estimator's window mean.
  EXPECT_GT(bar.estimated_sigma_us(), 0.0);
}

TEST(AdaptiveBarrier, TinyGroupsNeverAdapt) {
  AdaptiveBarrier::Options opt;
  opt.window = 1;
  AdaptiveBarrier bar(2, opt);
  run_threads(2, [&](std::size_t tid) {
    for (int i = 0; i < 50; ++i) {
      if (tid == 1) std::this_thread::sleep_for(std::chrono::microseconds(200));
      bar.arrive_and_wait(tid);
    }
  });
  EXPECT_EQ(bar.rebuilds(), 0u);
}

}  // namespace
}  // namespace imbar
