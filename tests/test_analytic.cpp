// The paper's analytic model (Algorithm 1, Eqs. 1-8).
#include <gtest/gtest.h>

#include <cmath>

#include "dist/normal.hpp"
#include "dist/order_stats.hpp"
#include "model/analytic.hpp"
#include "model/degree.hpp"

namespace imbar {
namespace {

TEST(Analytic, RejectsNonFullTrees) {
  EXPECT_THROW(analytic_sync_delay({4096, 32, 10.0, 20.0}),
               std::invalid_argument);
  EXPECT_THROW(analytic_sync_delay({1, 2, 0.0, 20.0}), std::invalid_argument);
}

TEST(Analytic, SubsetSizesFollowGeometricLaw) {
  // S_l holds (d-1) d^l processors and they sum to p - 1.
  const auto r = analytic_sync_delay({64, 4, 5.0, 20.0});
  ASSERT_EQ(r.subsets.size(), 3u);  // L = 3
  EXPECT_EQ(r.subsets[0].size, 3u);
  EXPECT_EQ(r.subsets[1].size, 12u);
  EXPECT_EQ(r.subsets[2].size, 48u);
  std::size_t total = 1;
  for (const auto& s : r.subsets) total += s.size;
  EXPECT_EQ(total, 64u);
}

TEST(Analytic, PBeforeMatchesEq2) {
  // P_before(S_l) = 1 - d^(l+1)/p, with the top level patched to half
  // the level below.
  const auto r = analytic_sync_delay({64, 4, 5.0, 20.0});
  EXPECT_NEAR(r.subsets[0].p_before, 1.0 - 4.0 / 64.0, 1e-12);
  EXPECT_NEAR(r.subsets[1].p_before, 1.0 - 16.0 / 64.0, 1e-12);
  EXPECT_NEAR(r.subsets[2].p_before, (1.0 - 16.0 / 64.0) / 2.0, 1e-12);
}

TEST(Analytic, ZeroSigmaReducesToEq1) {
  // With sigma = 0 every arrival term vanishes and Eq. 8 reduces
  // exactly to Eq. 1's L * d * t_c — the paper's simultaneous-arrival
  // anchor. This also covers the central counter: p * t_c.
  for (std::size_t d : {2u, 4u, 8u, 64u}) {
    const std::size_t p = 64;
    const auto r = analytic_sync_delay({p, d, 0.0, 20.0});
    EXPECT_DOUBLE_EQ(r.sync_delay, eq1_sync_delay(p, d, 20.0)) << "degree " << d;
  }
  EXPECT_DOUBLE_EQ(analytic_sync_delay({256, 256, 0.0, 20.0}).sync_delay,
                   256 * 20.0);
}

TEST(Analytic, DelayIsNonIncreasingInSigmaForWideTrees) {
  // For a central counter, wider arrival spread hides more contention.
  double prev = 1e300;
  for (double sigma : {0.0, 100.0, 400.0, 1600.0}) {
    const auto r = analytic_sync_delay({256, 256, sigma, 20.0});
    EXPECT_LE(r.sync_delay, prev + 1e-9);
    prev = r.sync_delay;
  }
}

TEST(Analytic, LastArrivalGrowsWithSigma) {
  const auto a = analytic_sync_delay({64, 4, 10.0, 20.0});
  const auto b = analytic_sync_delay({64, 4, 100.0, 20.0});
  EXPECT_GT(b.last_arrival, a.last_arrival);
  EXPECT_NEAR(b.last_arrival / a.last_arrival, 10.0, 1e-6);
}

TEST(Analytic, EstimateAtZeroSigmaIsClassical) {
  // sigma = 0 must reproduce the classical small-degree optimum (2/4
  // tie breaks to 4, the value the paper's Figures 3-4 report).
  EXPECT_EQ(estimate_optimal_degree(64, 0.0, 20.0).degree, 4u);
  EXPECT_EQ(estimate_optimal_degree(256, 0.0, 20.0).degree, 4u);
  EXPECT_EQ(estimate_optimal_degree(4096, 0.0, 20.0).degree, 4u);
}

TEST(Analytic, EstimateGrowsWithImbalance) {
  // The paper's headline: optimal degree increases with sigma/t_c.
  const double t_c = 20.0;
  std::size_t prev = 2;
  for (double sigma_tc : {0.0, 6.25, 25.0, 100.0, 400.0}) {
    const auto est = estimate_optimal_degree(4096, sigma_tc * t_c, t_c);
    EXPECT_GE(est.degree, prev) << "sigma = " << sigma_tc << " t_c";
    prev = est.degree;
  }
  EXPECT_GE(estimate_optimal_degree(4096, 400.0 * t_c, t_c).degree, 64u);
}

TEST(Analytic, SmallSystemWideImbalancePrefersCentralCounter) {
  // Paper Figure 3: p = 64, sigma = 25 t_c -> single counter optimal.
  const auto est = estimate_optimal_degree(64, 25.0 * 20.0, 20.0);
  EXPECT_EQ(est.degree, 64u);
}

TEST(Analytic, Figure4EstimatedRowForP64) {
  // The paper's Figure 4 "est" row for 64 processors: degree 4 at
  // sigma = 0, degree 8 at sigma = 6.2 t_c, central counter at 25 t_c.
  const double t_c = 20.0;
  EXPECT_EQ(estimate_optimal_degree(64, 0.0, t_c).degree, 4u);
  EXPECT_EQ(estimate_optimal_degree(64, 6.2 * t_c, t_c).degree, 8u);
  EXPECT_EQ(estimate_optimal_degree(64, 25.0 * t_c, t_c).degree, 64u);
}

TEST(Analytic, GoldenDelayValuesP64) {
  // Hand-computed values (see DESIGN.md section 6 for the Eq. 6
  // reading): sigma = 500 us (25 t_c), t_c = 20 us.
  //   d = 8,  L = 2: T_rel(S_0) = 500*Phi^-1(0.875) + 1*8*20 + 1*20
  //   T_arr(last) = 500 * E[max 64].
  const double sigma = 500.0, t_c = 20.0;
  const auto r = analytic_sync_delay({64, 8, sigma, t_c});
  const double arr_s0 = sigma * normal_inv_cdf(1.0 - 8.0 / 64.0);
  const double rel_s0 = arr_s0 + 1.0 * 8.0 * t_c + 1.0 * t_c;
  EXPECT_NEAR(r.subsets[0].arrival, arr_s0, 1e-9);
  EXPECT_NEAR(r.subsets[0].release, rel_s0, 1e-9);
  EXPECT_NEAR(r.last_arrival, sigma * expected_max_normal_exact(64), 1e-6);
  EXPECT_NEAR(r.last_release, r.last_arrival + 2 * t_c, 1e-9);
}

TEST(AnalyticGeneral, AgreesWithFullTreeModel) {
  for (std::size_t d : {2u, 4u, 8u, 64u}) {
    const AnalyticParams params{64, d, 80.0, 20.0};
    EXPECT_DOUBLE_EQ(analytic_sync_delay(params).sync_delay,
                     analytic_sync_delay_general(params).sync_delay);
  }
}

TEST(AnalyticGeneral, HandlesArbitraryP) {
  // 56 processors (the KSR1 configuration) has no full tree except the
  // central counter; the general model must still rank degrees sanely.
  const auto low = estimate_optimal_degree_general(56, 0.0, 20.0);
  EXPECT_LE(low.degree, 8u);
  const auto high = estimate_optimal_degree_general(56, 1000.0, 20.0);
  EXPECT_GE(high.degree, low.degree);
  EXPECT_GT(low.predicted_delay, 0.0);
}

TEST(AnalyticGeneral, CandidateFiltering) {
  const auto est =
      estimate_optimal_degree_general(64, 0.0, 20.0, {1, 3, 4, 100});
  EXPECT_EQ(est.degree, 4u);  // 1 and 100 are filtered out, 3 vs 4 ranked
}

TEST(AnalyticGeneral, Validation) {
  EXPECT_THROW(analytic_sync_delay_general({1, 2, 0.0, 20.0}),
               std::invalid_argument);
  EXPECT_THROW(analytic_sync_delay_general({8, 1, 0.0, 20.0}),
               std::invalid_argument);
  EXPECT_THROW(estimate_optimal_degree_general(1, 0.0, 20.0),
               std::invalid_argument);
}

TEST(Analytic, ReleaseTimesAreConsistent) {
  const auto r = analytic_sync_delay({256, 4, 50.0, 20.0});
  // Eq. 7: last release = last arrival + L * t_c.
  EXPECT_DOUBLE_EQ(r.last_release, r.last_arrival + 4 * 20.0);
  // Eq. 8: the delay at least covers the last processor's own path.
  EXPECT_GE(r.sync_delay, 4 * 20.0 - 1e-9);
}

// Property sweep: for every full-tree configuration, the model's delay
// is positive and at least the update component L * t_c.
struct ModelCase {
  std::size_t p;
  std::size_t d;
  double sigma;
};

class AnalyticProperty : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AnalyticProperty, DelayBoundedBelowByUpdatePath) {
  const auto [p, d, sigma] = GetParam();
  const auto r = analytic_sync_delay({p, d, sigma, 20.0});
  EXPECT_GE(r.sync_delay,
            static_cast<double>(tree_levels(p, d)) * 20.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalyticProperty,
    ::testing::Values(ModelCase{64, 2, 0.0}, ModelCase{64, 4, 10.0},
                      ModelCase{64, 8, 100.0}, ModelCase{64, 64, 500.0},
                      ModelCase{256, 4, 50.0}, ModelCase{256, 16, 200.0},
                      ModelCase{4096, 4, 0.0}, ModelCase{4096, 16, 250.0},
                      ModelCase{4096, 64, 1000.0},
                      ModelCase{4096, 4096, 8000.0}));

}  // namespace
}  // namespace imbar
