// Real threaded barriers: correctness under concurrency for every kind.
//
// The core property: a barrier-separated phase counter is consistent —
// no thread observes another thread lagging a phase behind after the
// barrier. Checked with randomized per-thread delays (the load-imbalance
// regime the library is built for).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "barrier/dissemination_barrier.hpp"
#include "barrier/dynamic_placement_barrier.hpp"
#include "barrier/factory.hpp"
#include "barrier/flat_barrier.hpp"
#include "barrier/membership_ops.hpp"
#include "barrier/mcs_tree_barrier.hpp"
#include "util/cacheline.hpp"
#include "util/prng.hpp"

#include "barrier_test_support.hpp"

namespace imbar {
namespace {

struct BarrierCase {
  const char* name;
  BarrierKind kind;
  std::size_t threads;
  std::size_t degree;
};

using test::run_threads;

class BarrierCorrectness : public ::testing::TestWithParam<BarrierCase> {};

TEST_P(BarrierCorrectness, PhaseCounterNeverLags) {
  const auto& param = GetParam();
  BarrierConfig cfg;
  cfg.kind = param.kind;
  cfg.participants = param.threads;
  cfg.degree = param.degree;
  auto barrier = make_barrier(cfg);

  constexpr int kPhases = 400;
  std::vector<PaddedAtomic<int>> phase(param.threads);
  std::atomic<bool> violation{false};

  run_threads(param.threads, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(2024, tid);
    for (int p = 1; p <= kPhases; ++p) {
      if (rng.below(8) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(rng.below(200)));
      phase[tid].value.store(p, std::memory_order_release);
      barrier->arrive_and_wait(tid);
      // After the barrier every thread must have published phase >= p.
      for (std::size_t o = 0; o < param.threads; ++o) {
        if (phase[o].value.load(std::memory_order_acquire) < p)
          violation.store(true, std::memory_order_relaxed);
      }
      barrier->arrive_and_wait(tid);  // protect the check phase
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(barrier->participants(), param.threads);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BarrierCorrectness,
    ::testing::Values(
        BarrierCase{"central_4", BarrierKind::kCentral, 4, 0},
        BarrierCase{"combining_5_d2", BarrierKind::kCombiningTree, 5, 2},
        BarrierCase{"combining_8_d4", BarrierKind::kCombiningTree, 8, 4},
        BarrierCase{"combining_3_d3", BarrierKind::kCombiningTree, 3, 3},
        BarrierCase{"mcs_6_d2", BarrierKind::kMcsTree, 6, 2},
        BarrierCase{"mcs_8_d4", BarrierKind::kMcsTree, 8, 4},
        BarrierCase{"dynamic_6_d2", BarrierKind::kDynamicPlacement, 6, 2},
        BarrierCase{"dynamic_8_d4", BarrierKind::kDynamicPlacement, 8, 4},
        BarrierCase{"dissemination_5", BarrierKind::kDissemination, 5, 0},
        BarrierCase{"dissemination_8", BarrierKind::kDissemination, 8, 0},
        BarrierCase{"tournament_6", BarrierKind::kTournament, 6, 0},
        BarrierCase{"mcs_local_7", BarrierKind::kMcsLocalSpin, 7, 0},
        BarrierCase{"adaptive_6", BarrierKind::kAdaptive, 6, 0},
        BarrierCase{"sense_5", BarrierKind::kSenseReversing, 5, 0},
        // flat_5 exercises the runtime-generic episode loop, flat_8 the
        // compile-time FlatBarrierT<8> fast path the factory dispatches.
        BarrierCase{"flat_5", BarrierKind::kFlat, 5, 0},
        BarrierCase{"flat_8", BarrierKind::kFlat, 8, 0}),
    [](const auto& info) { return info.param.name; });

class FuzzyCorrectness : public ::testing::TestWithParam<BarrierCase> {};

TEST_P(FuzzyCorrectness, SplitPhaseOverlapIsSafe) {
  // arrive(); slack work; wait() — fast threads may arrive at barrier
  // k+1 while slow threads still sit in wait(k).
  const auto& param = GetParam();
  BarrierConfig cfg;
  cfg.kind = param.kind;
  cfg.participants = param.threads;
  cfg.degree = param.degree;
  auto barrier = make_fuzzy_barrier(cfg);

  constexpr int kPhases = 300;
  std::vector<PaddedAtomic<int>> arrived(param.threads);
  std::atomic<bool> violation{false};

  run_threads(param.threads, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(77, tid);
    for (int p = 1; p <= kPhases; ++p) {
      arrived[tid].value.store(p, std::memory_order_release);
      barrier->arrive(tid);
      // Slack work of random length.
      if (rng.below(4) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(rng.below(150)));
      barrier->wait(tid);
      for (std::size_t o = 0; o < param.threads; ++o)
        if (arrived[o].value.load(std::memory_order_acquire) < p)
          violation.store(true, std::memory_order_relaxed);
      // No second sync: the next arrive may overlap other threads'
      // wait — exactly the fuzzy regime under test.
    }
  });
  EXPECT_FALSE(violation.load());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FuzzyCorrectness,
    ::testing::Values(
        BarrierCase{"central", BarrierKind::kCentral, 4, 0},
        BarrierCase{"combining", BarrierKind::kCombiningTree, 6, 2},
        BarrierCase{"mcs", BarrierKind::kMcsTree, 6, 2},
        BarrierCase{"dynamic", BarrierKind::kDynamicPlacement, 7, 2},
        BarrierCase{"adaptive", BarrierKind::kAdaptive, 5, 0},
        BarrierCase{"sense", BarrierKind::kSenseReversing, 4, 0}),
    [](const auto& info) { return info.param.name; });

TEST(Barriers, SingleParticipantNeverBlocks) {
  for (auto kind : kAllBarrierKinds) {
    BarrierConfig cfg;
    cfg.kind = kind;
    cfg.participants = 1;
    cfg.degree = 2;
    auto b = make_barrier(cfg);
    for (int i = 0; i < 100; ++i) b->arrive_and_wait(0);
    EXPECT_EQ(b->participants(), 1u) << to_string(kind);
  }
}

TEST(Barriers, EpisodeCountersAdvance) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = 4;
  cfg.degree = 2;
  auto b = make_barrier(cfg);
  run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 50; ++i) b->arrive_and_wait(tid);
  });
  const auto c = b->counters();
  EXPECT_EQ(c.episodes, 50u);
  // Plain tree of 4, degree 2: 3 counters; 4 + 2 updates per episode.
  EXPECT_EQ(c.updates, 50u * 6u);
}

TEST(Barriers, CentralCounterUpdatesArePPerEpisode) {
  CentralBarrier b(3);
  run_threads(3, [&](std::size_t tid) {
    for (int i = 0; i < 20; ++i) b.arrive_and_wait(tid);
  });
  const auto c = b.counters();
  EXPECT_EQ(c.episodes, 20u);
  EXPECT_EQ(c.updates, 60u);
}

TEST(Barriers, FactoryValidation) {
  BarrierConfig cfg;
  cfg.participants = 0;
  EXPECT_THROW(make_barrier(cfg), std::invalid_argument);
  cfg.participants = 4;
  for (auto kind : {BarrierKind::kDissemination, BarrierKind::kTournament,
                    BarrierKind::kMcsLocalSpin}) {
    cfg.kind = kind;
    EXPECT_THROW(make_fuzzy_barrier(cfg), std::invalid_argument);
    EXPECT_NO_THROW(make_barrier(cfg));
  }
}

TEST(Barriers, FactoryValidatesTreeDegrees) {
  for (auto kind : {BarrierKind::kCombiningTree, BarrierKind::kMcsTree,
                    BarrierKind::kDynamicPlacement}) {
    BarrierConfig cfg;
    cfg.kind = kind;
    cfg.participants = 4;
    cfg.degree = 1;  // a tree needs fan-in >= 2
    EXPECT_THROW(make_barrier(cfg), std::invalid_argument) << to_string(kind);
    cfg.degree = 5;  // wider than the cohort
    EXPECT_THROW(make_barrier(cfg), std::invalid_argument) << to_string(kind);
    cfg.degree = 4;  // degree == participants degenerates to one counter
    EXPECT_NO_THROW(make_barrier(cfg)) << to_string(kind);
  }
  // Non-tree kinds ignore the degree field entirely.
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCentral;
  cfg.participants = 2;
  cfg.degree = 99;
  EXPECT_NO_THROW(make_barrier(cfg));
  // A single participant accepts the minimum tree degree.
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = 1;
  cfg.degree = 2;
  EXPECT_NO_THROW(make_barrier(cfg));
}

TEST(Barriers, KindStringsRoundTrip) {
  for (auto kind : kAllBarrierKinds) {
    EXPECT_EQ(barrier_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)barrier_kind_from_string("nope"), std::invalid_argument);
}

TEST(Barriers, KindCapabilityQueriesMatchFactoryBehaviour) {
  for (auto kind : kAllBarrierKinds) {
    BarrierConfig cfg;
    cfg.kind = kind;
    cfg.participants = 4;
    cfg.degree = 2;
    if (barrier_kind_splits(kind)) {
      EXPECT_NO_THROW(make_fuzzy_barrier(cfg)) << to_string(kind);
    } else {
      EXPECT_THROW(make_fuzzy_barrier(cfg), std::invalid_argument)
          << to_string(kind);
    }
    cfg.degree = cfg.participants + 1;
    if (barrier_kind_uses_degree(kind)) {
      EXPECT_THROW(make_barrier(cfg), std::invalid_argument) << to_string(kind);
    } else {
      EXPECT_NO_THROW(make_barrier(cfg)) << to_string(kind);
    }
  }
}

TEST(Barriers, ReleaseCountedAndCooperativeReleaseQueries) {
  // Release-counted: the episode counter advances only at release, so
  // "count >= my entry ordinal" proves my episode completed — the
  // robust decorators' release-beats-timeout recheck relies on it.
  // Entry-counted kinds (dissemination, tournament, mcs-local) bump on
  // entry and prove nothing mid-episode; those same kinds release
  // cooperatively (waiters forward peers' releases), which is what
  // makes their counters entry-driven in the first place. Flat derives
  // episodes from per-thread exit ordinals — conservative mid-episode,
  // so it gets the same quiescent-only (non-release-counted) treatment.
  for (auto kind : kAllBarrierKinds) {
    const bool cooperative = barrier_kind_cooperative_release(kind);
    const bool ordinal_counted = kind == BarrierKind::kDissemination ||
                                 kind == BarrierKind::kTournament ||
                                 kind == BarrierKind::kMcsLocalSpin ||
                                 kind == BarrierKind::kFlat;
    EXPECT_EQ(barrier_kind_release_counted(kind), !ordinal_counted)
        << to_string(kind);
    EXPECT_EQ(cooperative, kind == BarrierKind::kTournament ||
                               kind == BarrierKind::kMcsLocalSpin)
        << to_string(kind);
  }
}

TEST(Barriers, ConstructorValidation) {
  EXPECT_THROW(CentralBarrier(0), std::invalid_argument);
  EXPECT_THROW(CombiningTreeBarrier(0, 4), std::invalid_argument);
  EXPECT_THROW(CombiningTreeBarrier(8, 1), std::invalid_argument);
  EXPECT_THROW(McsTreeBarrier(8, 0), std::invalid_argument);
  EXPECT_THROW(DynamicPlacementBarrier(8, 1), std::invalid_argument);
  EXPECT_THROW(DisseminationBarrier(0), std::invalid_argument);
  EXPECT_THROW(FlatBarrier(0), std::invalid_argument);
}

TEST(Barriers, TreeBarriersExposeTopology) {
  CombiningTreeBarrier plain(8, 4);
  EXPECT_EQ(plain.degree(), 4u);
  EXPECT_EQ(plain.topology().procs(), 8u);
  McsTreeBarrier mcs(8, 4);
  EXPECT_EQ(mcs.topology().kind(), simb::TreeKind::kMcs);
}

TEST(Barriers, DisseminationRoundsAreLogP) {
  EXPECT_EQ(DisseminationBarrier(8).rounds(), 3u);
  EXPECT_EQ(DisseminationBarrier(5).rounds(), 3u);
  EXPECT_EQ(DisseminationBarrier(2).rounds(), 1u);
  EXPECT_EQ(DisseminationBarrier(1).rounds(), 0u);
}

TEST(FlatBarrier, RoundsAreLogPAndFastPathIsCompiledPowersOfTwo) {
  EXPECT_EQ(FlatBarrier(8).rounds(), 3u);
  EXPECT_EQ(FlatBarrier(5).rounds(), 3u);
  EXPECT_EQ(FlatBarrier(2).rounds(), 1u);
  EXPECT_EQ(FlatBarrier(1).rounds(), 0u);
  for (std::size_t p : {2u, 4u, 8u, 16u, 32u, 64u})
    EXPECT_TRUE(FlatBarrier(p).compiled_fast_path()) << p;
  EXPECT_FALSE(FlatBarrier(5).compiled_fast_path());
  EXPECT_FALSE(FlatBarrier(128).compiled_fast_path());  // pow2, not compiled
  EXPECT_FALSE(FlatBarrier(8, /*force_generic=*/true).compiled_fast_path());
  EXPECT_TRUE(FlatBarrierT<8>().compiled_fast_path());
}

TEST(FlatBarrier, ReuseCountsEpisodesAndUpdatesExactly) {
  FlatBarrierT<4> b;
  run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 300; ++i) b.arrive_and_wait(tid);
  });
  const auto c = b.counters();
  EXPECT_EQ(c.episodes, 300u);
  // log2(4) = 2 rounds, one signal store per thread per round.
  EXPECT_EQ(c.updates, 300u * 4u * 2u);
  EXPECT_EQ(b.participants(), 4u);
}

TEST(FlatBarrier, CompileTimeAndRuntimePathsAgree) {
  // The same phase-counter workload through FlatBarrierT<8> and a
  // force-generic FlatBarrier(8): identical protocol state machines,
  // so both must complete every episode with identical counters.
  FlatBarrierT<8> compiled;
  FlatBarrier generic(8, /*force_generic=*/true);
  ASSERT_TRUE(compiled.compiled_fast_path());
  ASSERT_FALSE(generic.compiled_fast_path());
  ASSERT_EQ(compiled.rounds(), generic.rounds());

  std::vector<PaddedAtomic<int>> phase(8);
  std::atomic<bool> violation{false};
  run_threads(8, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(4242, tid);
    for (int p = 1; p <= 250; ++p) {
      if (rng.below(16) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(rng.below(100)));
      phase[tid].value.store(p, std::memory_order_release);
      compiled.arrive_and_wait(tid);
      generic.arrive_and_wait(tid);
      for (std::size_t o = 0; o < 8; ++o)
        if (phase[o].value.load(std::memory_order_acquire) < p)
          violation.store(true, std::memory_order_relaxed);
      compiled.arrive_and_wait(tid);  // protect the check phase
      generic.arrive_and_wait(tid);
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(compiled.counters().episodes, generic.counters().episodes);
  EXPECT_EQ(compiled.counters().updates, generic.counters().updates);
}

TEST(FlatBarrier, DeadlineAndCancelTaxonomy) {
  using namespace std::chrono_literals;
  // Complete cohort: generous deadline returns kReady.
  {
    FlatBarrierT<2> b;
    WaitStatus s0{}, s1{};
    run_threads(2, [&](std::size_t tid) {
      const WaitStatus s = b.arrive_and_wait_for(tid, 5s);
      (tid == 0 ? s0 : s1) = s;
    });
    EXPECT_EQ(s0, WaitStatus::kReady);
    EXPECT_EQ(s1, WaitStatus::kReady);
  }
  // Withheld peer: the deadline fires. The instance is torn afterwards
  // (this thread's round signals are already published) and must be
  // rebuilt — the dissemination-family taxonomy (docs/robustness.md).
  {
    FlatBarrierT<2> b;
    EXPECT_EQ(b.arrive_and_wait_for(0, 5ms), WaitStatus::kTimeout);
    EXPECT_EQ(b.counters().episodes, 0u);
  }
  // A raised cancel flag beats a distant deadline.
  {
    FlatBarrierT<2> b;
    std::atomic<bool> cancel{true};
    const WaitContext ctx = WaitContext::after(10s, &cancel);
    EXPECT_EQ(b.arrive_and_wait_until(0, ctx), WaitStatus::kCancelled);
  }
}

TEST(FlatBarrier, DetachReselectsLoopAndKeepsCountersMonotone) {
  FlatBarrierT<8> b;
  run_threads(8, [&](std::size_t tid) {
    for (int i = 0; i < 100; ++i) b.arrive_and_wait(tid);
  });
  const auto before = b.counters();
  EXPECT_EQ(before.episodes, 100u);

  MembershipOps* ops = membership_ops(&b);
  ASSERT_NE(ops, nullptr);
  EXPECT_TRUE(ops->supports_detach());
  ops->detach_quiescent(3);
  EXPECT_NO_THROW(ops->check_structure());
  EXPECT_EQ(b.participants(), 7u);
  EXPECT_EQ(b.rounds(), 3u);  // ceil(log2 7)
  // 7 is not a compiled size: the detach re-selected the generic loop.
  EXPECT_FALSE(b.compiled_fast_path());

  run_threads(7, [&](std::size_t tid) {
    for (int i = 0; i < 50; ++i) b.arrive_and_wait(tid);
  });
  const auto after = b.counters();
  EXPECT_EQ(after.episodes, 150u);  // folded remainder + fresh episodes
  EXPECT_GT(after.updates, before.updates);

  // Detaching the last survivor is refused.
  FlatBarrierT<2> two;
  MembershipOps* two_ops = membership_ops(&two);
  two_ops->detach_quiescent(1);
  EXPECT_THROW(two_ops->detach_quiescent(0), std::logic_error);
}

TEST(Barriers, ManyEpisodesStress) {
  // Longer randomized soak across two tree kinds at once.
  DynamicPlacementBarrier dyn(5, 2);
  McsTreeBarrier mcs(5, 2);
  run_threads(5, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(5150, tid);
    for (int i = 0; i < 1500; ++i) {
      if (rng.below(32) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      dyn.arrive_and_wait(tid);
      mcs.arrive_and_wait(tid);
    }
  });
  EXPECT_EQ(dyn.counters().episodes, 1500u);
  EXPECT_EQ(mcs.counters().episodes, 1500u);
}

}  // namespace
}  // namespace imbar
