// Tournament and full-MCS (local-spin) baseline barriers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "barrier/mcs_local_spin_barrier.hpp"
#include "barrier/tournament_barrier.hpp"
#include "util/cacheline.hpp"
#include "util/prng.hpp"

#include "barrier_test_support.hpp"

namespace imbar {
namespace {

using test::run_threads;

template <typename B>
void check_phase_consistency(B& barrier, std::size_t threads, int phases) {
  std::vector<PaddedAtomic<int>> phase(threads);
  std::atomic<bool> violation{false};
  run_threads(threads, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(404, tid);
    for (int p = 1; p <= phases; ++p) {
      if (rng.below(8) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(rng.below(150)));
      phase[tid].value.store(p, std::memory_order_release);
      barrier.arrive_and_wait(tid);
      for (std::size_t o = 0; o < threads; ++o)
        if (phase[o].value.load(std::memory_order_acquire) < p)
          violation.store(true, std::memory_order_relaxed);
      barrier.arrive_and_wait(tid);
    }
  });
  EXPECT_FALSE(violation.load());
}

class TournamentSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TournamentSizes, PhaseConsistent) {
  TournamentBarrier barrier(GetParam());
  check_phase_consistency(barrier, GetParam(), 250);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TournamentSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

class McsLocalSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McsLocalSizes, PhaseConsistent) {
  McsLocalSpinBarrier barrier(GetParam());
  check_phase_consistency(barrier, GetParam(), 250);
}

INSTANTIATE_TEST_SUITE_P(Sizes, McsLocalSizes,
                         ::testing::Values(1, 2, 3, 5, 6, 8));

TEST(Tournament, Validation) {
  EXPECT_THROW(TournamentBarrier(0), std::invalid_argument);
}

TEST(Tournament, RoundsAreLog2) {
  EXPECT_EQ(TournamentBarrier(8).rounds(), 3u);
  EXPECT_EQ(TournamentBarrier(5).rounds(), 3u);
  EXPECT_EQ(TournamentBarrier(1).rounds(), 0u);
}

TEST(Tournament, SingleThreadNeverBlocks) {
  TournamentBarrier barrier(1);
  for (int i = 0; i < 200; ++i) barrier.arrive_and_wait(0);
  EXPECT_EQ(barrier.counters().episodes, 200u);
}

TEST(Tournament, EpisodeAndSignalAccounting) {
  TournamentBarrier barrier(6);
  run_threads(6, [&](std::size_t tid) {
    for (int i = 0; i < 100; ++i) barrier.arrive_and_wait(tid);
  });
  const auto c = barrier.counters();
  EXPECT_EQ(c.episodes, 100u);
  EXPECT_EQ(c.updates, 100u * 5u);  // one signal per non-champion
}

TEST(McsLocal, Validation) {
  EXPECT_THROW(McsLocalSpinBarrier(0), std::invalid_argument);
  EXPECT_THROW(McsLocalSpinBarrier(4, 1, 2), std::invalid_argument);
  EXPECT_THROW(McsLocalSpinBarrier(4, 4, 1), std::invalid_argument);
}

TEST(McsLocal, DefaultFanMatchesMcsPaper) {
  McsLocalSpinBarrier barrier(16);
  EXPECT_EQ(barrier.arrival_fanin(), 4u);
  EXPECT_EQ(barrier.wakeup_fanout(), 2u);
}

TEST(McsLocal, CustomFanWorks) {
  McsLocalSpinBarrier barrier(7, 2, 3);
  check_phase_consistency(barrier, 7, 150);
}

TEST(McsLocal, CommunicationCountIsTheoreticalMinimumTimesTwo) {
  // n-1 arrival signals and n-1 wakeup writes per episode.
  McsLocalSpinBarrier barrier(5);
  run_threads(5, [&](std::size_t tid) {
    for (int i = 0; i < 80; ++i) barrier.arrive_and_wait(tid);
  });
  const auto c = barrier.counters();
  EXPECT_EQ(c.episodes, 80u);
  EXPECT_EQ(c.updates, 80u * 8u);
}

TEST(McsLocal, SoakWithStraggler) {
  McsLocalSpinBarrier barrier(6);
  run_threads(6, [&](std::size_t tid) {
    for (int i = 0; i < 500; ++i) {
      if (tid == 5 && i % 7 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(120));
      barrier.arrive_and_wait(tid);
    }
  });
  EXPECT_EQ(barrier.counters().episodes, 500u);
}

}  // namespace
}  // namespace imbar
