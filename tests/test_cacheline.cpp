// Padding/alignment invariants that the barrier layouts depend on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/cacheline.hpp"
#include "util/spin_wait.hpp"

namespace imbar {
namespace {

TEST(Cacheline, PaddedOccupiesFullLines) {
  EXPECT_EQ(sizeof(Padded<char>) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(Padded<double>) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(PaddedAtomic<std::uint64_t>) % kCacheLineSize, 0u);
}

TEST(Cacheline, PaddedIsLineAligned) {
  EXPECT_EQ(alignof(Padded<char>), kCacheLineSize);
  EXPECT_EQ(alignof(PaddedAtomic<int>), kCacheLineSize);
}

TEST(Cacheline, VectorElementsLandOnDistinctLines) {
  std::vector<PaddedAtomic<int>> v(8);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&v[i - 1]);
    const auto b = reinterpret_cast<std::uintptr_t>(&v[i]);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Cacheline, PaddedAccessors) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p = 42;
  EXPECT_EQ(p.value, 42);
}

TEST(Cacheline, PaddedLargerThanLine) {
  struct Big {
    char data[100];
  };
  EXPECT_EQ(sizeof(Padded<Big>) % kCacheLineSize, 0u);
  EXPECT_GE(sizeof(Padded<Big>), sizeof(Big));
}

TEST(SpinWait, PredicateLoopTerminates) {
  std::atomic<bool> flag{false};
  std::thread setter([&] { flag.store(true, std::memory_order_release); });
  spin_until([&] { return flag.load(std::memory_order_acquire); });
  setter.join();
  EXPECT_TRUE(flag.load());
}

TEST(SpinWait, ResetRestartsBackoff) {
  SpinWait w(4);
  for (int i = 0; i < 10; ++i) w.wait();  // escalates to yield
  w.reset();
  w.wait();  // must not crash / hang
  SUCCEED();
}

}  // namespace
}  // namespace imbar
