// robust::ChaosCampaign: seeded multi-episode degradation scenarios.
// The headline contract is replay determinism — identical (seed,
// specs) produce a byte-identical campaign event log no matter how the
// campaign is sharded over exec workers — plus the per-scenario
// invariant audit on both the model and the live leg.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "barrier/factory.hpp"
#include "exec/parallel_for.hpp"
#include "robust/chaos_campaign.hpp"

namespace imbar::robust {
namespace {

std::vector<ChaosScenarioSpec> model_only_matrix(std::size_t procs,
                                                 std::size_t phases) {
  std::vector<ChaosScenarioSpec> specs =
      ChaosCampaign::canned_matrix(procs, phases);
  for (ChaosScenarioSpec& s : specs) s.run_live = false;
  return specs;
}

TEST(ChaosCampaign, EventLogIsByteIdenticalAcrossWorkerCounts) {
  // The acceptance replay contract: one campaign, three executor
  // shapes, one log. Model-only keeps this a pure function of the
  // seed (the live leg never contributes log lines anyway).
  const ChaosCampaign campaign(0xC4A05011ULL, model_only_matrix(4, 30));

  const ChaosCampaignResult serial = campaign.run(exec::Executor{1});
  ASSERT_TRUE(serial.passed) << serial.detail;
  const std::vector<std::string> base = serial.event_log();
  ASSERT_FALSE(base.empty());

  for (const std::size_t workers : {2u, 4u}) {
    exec::Executor exec;
    exec.threads = workers;
    const ChaosCampaignResult r = campaign.run(exec);
    ASSERT_TRUE(r.passed) << r.detail;
    const std::vector<std::string> log = r.event_log();
    ASSERT_EQ(log.size(), base.size()) << workers << " workers";
    for (std::size_t i = 0; i < base.size(); ++i)
      ASSERT_EQ(log[i], base[i]) << workers << " workers, line " << i;
  }
}

TEST(ChaosCampaign, SameSeedReplaysDifferentSeedDiverges) {
  const std::vector<ChaosScenarioSpec> specs = model_only_matrix(4, 20);
  const ChaosCampaignResult a = ChaosCampaign(7, specs).run();
  const ChaosCampaignResult b = ChaosCampaign(7, specs).run();
  const ChaosCampaignResult c = ChaosCampaign(8, specs).run();
  ASSERT_TRUE(a.passed) << a.detail;
  EXPECT_EQ(a.event_log(), b.event_log());
  // Different seed, different disturbance draws: the logs must not be
  // identical (the summary lines embed the seed, so this holds even in
  // the astronomically unlikely event the schedules coincide).
  EXPECT_NE(a.event_log(), c.event_log());
}

TEST(ChaosCampaign, TenKindSmokeRunsBothLegs) {
  // The PR-CI smoke: every BarrierKind through one mixed scenario with
  // the real-thread leg on, auditing the degradation invariants.
  const ChaosCampaign campaign(0x5D0CE11ULL,
                               ChaosCampaign::canned_matrix(4, 30));
  const ChaosCampaignResult r = campaign.run();
  ASSERT_TRUE(r.passed) << r.detail;
  ASSERT_EQ(r.scenarios.size(), kAllBarrierKinds.size());
  for (const ChaosScenarioResult& s : r.scenarios) {
    EXPECT_TRUE(s.live_ran) << s.label;
    // Conservation on both legs: every phase released exactly once.
    EXPECT_EQ(s.model_strict + s.model_quorum, 30u) << s.label;
    EXPECT_EQ(s.live_stats.strict_releases + s.live_stats.quorum_releases,
              30u)
        << s.label;
    EXPECT_FALSE(s.log.empty()) << s.label;
  }
}

TEST(ChaosCampaign, StrictOnlyScenarioNeverDegrades) {
  // quorum = 0 disables degradation on both legs: the burst slows
  // everyone down but every release stays strict.
  ChaosScenarioSpec spec;
  spec.kind = BarrierKind::kCentral;
  spec.procs = 4;
  spec.phases = 15;
  spec.quorum = 0;
  spec.burst.bursts = 2;
  spec.burst.span = 2;
  spec.burst.delay_us = 200.0;
  spec.burst.jitter_us = 50.0;
  const ChaosCampaignResult r = ChaosCampaign(99, {spec}).run();
  ASSERT_TRUE(r.passed) << r.detail;
  ASSERT_EQ(r.scenarios.size(), 1u);
  EXPECT_EQ(r.scenarios[0].model_strict, 15u);
  EXPECT_EQ(r.scenarios[0].model_quorum, 0u);
  EXPECT_EQ(r.scenarios[0].live_stats.quorum_releases, 0u);
  EXPECT_EQ(r.scenarios[0].live_stats.strict_releases, 15u);
}

TEST(ChaosSchedule, ComposesDisturbancesDeterministically) {
  ChaosScenarioSpec spec;
  spec.procs = 4;
  spec.phases = 40;
  spec.base_work_us = 10.0;
  spec.burst.bursts = 2;
  spec.burst.span = 3;
  spec.burst.delay_us = 100.0;
  spec.burst.jitter_us = 25.0;
  spec.oscillation.stragglers = 2;
  spec.oscillation.period = 5;
  spec.oscillation.delay_us = 300.0;

  const ChaosSchedule a = ChaosSchedule::make(31337, spec);
  const ChaosSchedule b = ChaosSchedule::make(31337, spec);

  std::size_t burst_phases = 0;
  for (std::size_t p = 0; p < spec.phases; ++p) {
    EXPECT_EQ(a.burst_at(p), b.burst_at(p));
    if (a.burst_at(p)) ++burst_phases;
    for (std::size_t proc = 0; proc < spec.procs; ++proc) {
      EXPECT_DOUBLE_EQ(a.arrival_delay_us(p, proc),
                       b.arrival_delay_us(p, proc));
      EXPECT_DOUBLE_EQ(a.work_us(p, proc), b.work_us(p, proc));
      // Work = base + this phase's arrival delay + previous phase's
      // release delay (no release delays configured here).
      EXPECT_DOUBLE_EQ(a.work_us(p, proc),
                       spec.base_work_us + a.arrival_delay_us(p, proc));
    }
  }
  // Both bursts landed (spans may overlap, so >= span, <= bursts*span).
  EXPECT_GE(burst_phases, spec.burst.span);
  EXPECT_LE(burst_phases, spec.burst.bursts * spec.burst.span);

  // Burst phases delay *every* proc by at least the burst delay;
  // non-burst, non-oscillation procs run undisturbed.
  for (std::size_t p = 0; p < spec.phases; ++p)
    if (a.burst_at(p))
      for (std::size_t proc = 0; proc < spec.procs; ++proc)
        EXPECT_GE(a.arrival_delay_us(p, proc), spec.burst.delay_us);
}

TEST(ChaosSchedule, OscillationRotatesTheLaggardRole) {
  ChaosScenarioSpec spec;
  spec.procs = 4;
  spec.phases = 20;
  spec.oscillation.stragglers = 2;
  spec.oscillation.period = 5;
  spec.oscillation.delay_us = 400.0;
  const ChaosSchedule s = ChaosSchedule::make(1, spec);

  for (std::size_t p = 0; p < spec.phases; ++p) {
    const std::size_t holder = (p / spec.oscillation.period) %
                               spec.oscillation.stragglers;
    for (std::size_t proc = 0; proc < spec.procs; ++proc) {
      const double d = s.arrival_delay_us(p, proc);
      if (proc == holder)
        EXPECT_GE(d, spec.oscillation.delay_us) << "p=" << p;
      else
        EXPECT_LT(d, spec.oscillation.delay_us) << "p=" << p;
    }
  }
}

TEST(ChaosSchedule, RejectsAbandonmentFaults) {
  // Deaths/evictions belong to the membership layer; the quorum layer
  // answers lateness with degradation, never abandonment.
  ChaosScenarioSpec spec;
  spec.faults.deaths = 1;
  EXPECT_THROW((void)ChaosSchedule::make(1, spec), std::invalid_argument);
  spec.faults.deaths = 0;
  spec.faults.evictions = 1;
  EXPECT_THROW((void)ChaosSchedule::make(1, spec), std::invalid_argument);
}

TEST(ChaosCampaign, CannedMatrixCoversEveryKindOnce) {
  const std::vector<ChaosScenarioSpec> specs =
      ChaosCampaign::canned_matrix(4, 40);
  ASSERT_EQ(specs.size(), kAllBarrierKinds.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].kind, kAllBarrierKinds[i]);
    EXPECT_GT(specs[i].quorum, 0u);
    EXPECT_GT(specs[i].deadline_budget.count(), 0);
    // Cooperative-release kinds (waiters forward peers' releases) get
    // double the baseline budget so a straggler's absence cannot starve
    // the release path inside one phase. kCentral (index 0) is the
    // non-cooperative baseline.
    if (barrier_kind_cooperative_release(specs[i].kind))
      EXPECT_EQ(specs[i].deadline_budget, 2 * specs[0].deadline_budget);
    else
      EXPECT_EQ(specs[i].deadline_budget, specs[0].deadline_budget);
  }
}

}  // namespace
}  // namespace imbar::robust
