// Nightly chaos-campaign stress: the heavy canned matrix (all ten
// kinds, raised disturbance intensity) across several seeds with both
// legs live, plus the replay contract at heavy scale. Runs under the
// `stress` ctest label (nightly TSan chaos job); excluded from the
// default suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "robust/chaos_campaign.hpp"

namespace imbar::robust {
namespace {

TEST(ChaosStress, HeavyMatrixAcrossSeeds) {
  for (const std::uint64_t seed : {0xA11CEULL, 0xB0BULL, 0xCA7ULL}) {
    const ChaosCampaign campaign(
        seed, ChaosCampaign::canned_matrix(4, 150, /*heavy=*/true));
    exec::Executor exec;
    exec.threads = 4;
    const ChaosCampaignResult r = campaign.run(exec);
    ASSERT_TRUE(r.passed) << "seed " << seed << ": " << r.detail;
    for (const ChaosScenarioResult& s : r.scenarios) {
      EXPECT_TRUE(s.live_ran) << s.label;
      EXPECT_EQ(s.model_strict + s.model_quorum, 150u) << s.label;
      EXPECT_EQ(s.live_stats.strict_releases + s.live_stats.quorum_releases,
                150u)
          << s.label;
    }
  }
}

TEST(ChaosStress, HeavyReplayIsByteIdenticalAcrossWorkerCounts) {
  std::vector<ChaosScenarioSpec> specs =
      ChaosCampaign::canned_matrix(6, 200, /*heavy=*/true);
  for (ChaosScenarioSpec& s : specs) s.run_live = false;
  const ChaosCampaign campaign(0xFEEDULL, specs);

  const std::vector<std::string> serial =
      campaign.run(exec::Executor{1}).event_log();
  exec::Executor wide;
  wide.threads = 4;
  const std::vector<std::string> sharded = campaign.run(wide).event_log();
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], sharded[i]) << "line " << i;
}

}  // namespace
}  // namespace imbar::robust
