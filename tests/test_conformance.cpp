// The barrier conformance matrix: every BarrierKind through one set of
// contract properties (src/check/conformance.hpp), instantiated purely
// from the factory — adding a kind to kAllBarrierKinds is the only step
// needed to pull it through this whole suite.
//
// Each kind runs twice: plain, and wrapped in the observability
// decorators (ConformanceOptions::instrument), so the instrumented
// wrappers are held to the exact same contract as the barriers they
// observe — again with no per-kind special-casing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "barrier/factory.hpp"
#include "check/conformance.hpp"
#include "util/prng.hpp"

namespace imbar::check {
namespace {

class Conformance
    : public ::testing::TestWithParam<std::tuple<BarrierKind, bool>> {
 protected:
  [[nodiscard]] BarrierKind kind() const { return std::get<0>(GetParam()); }
  [[nodiscard]] bool instrumented() const { return std::get<1>(GetParam()); }

  [[nodiscard]] BarrierConfig config() const {
    return conformance_config(kind(), oversubscribed_participants());
  }

  [[nodiscard]] ConformanceOptions options() const {
    ConformanceOptions opts;
    opts.epochs = 120;
    opts.instrument = instrumented();
    return opts;
  }

  static void expect_pass(const ConformanceResult& r) {
    EXPECT_TRUE(r.passed) << r.detail;
  }
};

TEST_P(Conformance, NoOvertake) {
  expect_pass(check_no_overtake(config(), options()));
}

TEST_P(Conformance, Reuse) { expect_pass(check_reuse(config(), options())); }

TEST_P(Conformance, EdgeConfigs) {
  expect_pass(check_edge_configs(kind(), options()));
}

TEST_P(Conformance, FuzzyPhase) {
  expect_pass(check_fuzzy_phase(config(), options()));
}

TEST_P(Conformance, TimeoutAndCancel) {
  expect_pass(check_timeout_semantics(config(), options()));
}

TEST_P(Conformance, RobustBreakAndReset) {
  expect_pass(check_robust_break_and_reset(config(), options()));
}

TEST_P(Conformance, AdversarialSchedules) {
  expect_pass(check_adversarial_schedules(config(), options()));
}

TEST_P(Conformance, EvictMidPhase) {
  expect_pass(check_evict_mid_phase(config(), options()));
}

TEST_P(Conformance, QuarantineReadmit) {
  expect_pass(check_quarantine_readmit(config(), options()));
}

TEST_P(Conformance, QuorumReleaseUnderTail) {
  expect_pass(check_quorum_release_under_tail(config(), options()));
}

TEST_P(Conformance, LateReconcileExactness) {
  expect_pass(check_late_reconcile_exactness(config(), options()));
}

// Closed-loop decorator: generation ledger + exact episode accounting
// while a foreign thread storms force_swap across every kind. The
// parameter kind is the *starting* configuration; the storm itself
// cycles through kAllBarrierKinds regardless.
TEST_P(Conformance, ControllerSwapUnderTraffic) {
  expect_pass(check_controller_swap(config(), options()));
}

// Randomized (p, degree) draws, seeded so a failure names its schedule
// exactly. Degree is clamped by conformance_config for non-tree kinds.
TEST_P(Conformance, RandomizedConfigSweep) {
  Xoshiro256 rng = Xoshiro256::substream(
      0x5EEDC0DEULL, static_cast<std::uint64_t>(kind()));
  for (int draw = 0; draw < 3; ++draw) {
    const auto p = static_cast<std::size_t>(2 + rng.below(7));  // p in [2, 8]
    const auto d = static_cast<std::size_t>(2 + rng.below(p - 1));
    ConformanceOptions opts = options();
    opts.epochs = 40;
    opts.perturb.seed ^= rng.next();
    const auto r = check_no_overtake(conformance_config(kind(), p, d), opts);
    EXPECT_TRUE(r.passed) << "draw " << draw << " p=" << p << " d=" << d
                          << ": " << r.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, Conformance,
    ::testing::Combine(::testing::ValuesIn(kAllBarrierKinds),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<BarrierKind, bool>>& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      if (std::get<1>(info.param)) name += "_instrumented";
      return name;
    });

}  // namespace
}  // namespace imbar::check
