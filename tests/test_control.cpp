// Unit coverage for the closed-loop control library: the shared review
// core, the predictor / cost model, BarrierController decision
// semantics, the regime generators, the event-driven sim twin, and the
// live ControlledBarrier decorator (basic traffic — the full
// convergence and storm suites live in test_controller_convergence.cpp
// and test_control_stress.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "barrier_test_support.hpp"
#include "control/control_metrics.hpp"
#include "control/controlled_barrier.hpp"
#include "control/controller.hpp"
#include "control/regimes.hpp"
#include "control/sim_twin.hpp"
#include "obs/episode_recorder.hpp"
#include "obs/instrumented_barrier.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_export.hpp"
#include "sim/controller_model.hpp"

namespace imbar::control {
namespace {

// ---- review core -------------------------------------------------------

TEST(ReviewCore, DegreeCandidatesArePowersOfTwoPlusCap) {
  EXPECT_EQ(degree_candidates(8), (std::vector<std::size_t>{2, 4, 8}));
  EXPECT_EQ(degree_candidates(12), (std::vector<std::size_t>{2, 4, 8, 12}));
  EXPECT_EQ(degree_candidates(8, 4), (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(degree_candidates(1), (std::vector<std::size_t>{2}));
  // Cap beyond participants clamps to participants.
  EXPECT_EQ(degree_candidates(8, 64), (std::vector<std::size_t>{2, 4, 8}));
}

TEST(ReviewCore, TreeLevels) {
  EXPECT_EQ(tree_levels(1, 2), 0u);
  EXPECT_EQ(tree_levels(8, 2), 3u);
  EXPECT_EQ(tree_levels(8, 8), 1u);
  EXPECT_EQ(tree_levels(9, 2), 4u);
}

TEST(ReviewCore, NonDegreeKindsModelAsCentralShape) {
  const ReviewInputs in{8, 10.0, 0.15, 0.0};
  // A non-degree kind ignores the requested degree entirely.
  EXPECT_DOUBLE_EQ(predict_delay_us(BarrierKind::kSenseReversing, 2, in),
                   predict_delay_us(BarrierKind::kSenseReversing, 7, in));
  EXPECT_DOUBLE_EQ(
      predict_delay_us(BarrierKind::kCentral, 2, in),
      predict_delay_us(BarrierKind::kCombiningTree, 8, in));
}

TEST(ReviewCore, DynamicPlacementWinsOnlyUnderPersistence) {
  // sigma = 0 keeps the analytic tree delay contention-dominated (at
  // large sigma the tree's own sync delay collapses to the level
  // propagation and placement has nothing left to save).
  const ReviewInputs random{16, 0.0, 0.15, 0.0};
  const ReviewInputs persistent{16, 0.0, 0.15, 1.0};
  const double tree_r =
      predict_delay_us(BarrierKind::kCombiningTree, 4, random);
  const double dyn_r =
      predict_delay_us(BarrierKind::kDynamicPlacement, 4, random);
  const double dyn_p =
      predict_delay_us(BarrierKind::kDynamicPlacement, 4, persistent);
  // With iid arrivals dynamic placement is the plain tree plus the
  // victim-read overhead; with a perfectly persistent straggler it
  // collapses to the level propagation.
  EXPECT_GT(dyn_r, tree_r);
  EXPECT_LT(dyn_p, dyn_r);
  EXPECT_NEAR(dyn_p, tree_levels(16, 4) * 0.15 + 0.15, 1e-12);
}

TEST(ReviewCore, ReviewDegreeHoldsAtOptimumAndSwitchesUnderShift) {
  // At the optimum the review recommends staying put.
  const auto at_opt = review_degree(64, 2, 0.0, 20.0, 1.15);
  ASSERT_FALSE(at_opt.rebuild);
  // A strongly suboptimal current degree under the same inputs rebuilds
  // to the same optimum the candidate sweep finds.
  const auto shifted = review_degree(64, 64, 0.0, 20.0, 1.15);
  EXPECT_TRUE(shifted.rebuild);
  EXPECT_EQ(shifted.degree, at_opt.degree);
  EXPECT_GT(shifted.current_delay, shifted.best_delay);
}

// ---- predictor and cost model ------------------------------------------

SignalSnapshot signal_of(double sigma, double rho = 0.0) {
  SignalSnapshot s;
  s.sigma_us = sigma;
  s.persistence = rho;
  return s;
}

TEST(Predictor, ConvergesToConstantSignal) {
  EwmaTrendPredictor p;
  for (int i = 0; i < 200; ++i) p.observe(signal_of(25.0));
  EXPECT_NEAR(p.forecast().sigma_us, 25.0, 0.5);
}

TEST(Predictor, TrendExtrapolatesOnlyUnderPersistence) {
  // A rising sigma with rho=0 forecasts the level (no trend credit);
  // the same ramp with rho=1 forecasts ahead of the level.
  EwmaTrendPredictor flat;
  EwmaTrendPredictor trending;
  double last_flat = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double sigma = 1.0 + i;
    flat.observe(signal_of(sigma, 0.0));
    trending.observe(signal_of(sigma, 1.0));
    last_flat = sigma;
  }
  EXPECT_GT(trending.forecast().sigma_us, flat.forecast().sigma_us);
  EXPECT_LE(flat.forecast().sigma_us, last_flat);
}

TEST(Predictor, ResetForgets) {
  EwmaTrendPredictor p;
  for (int i = 0; i < 50; ++i) p.observe(signal_of(100.0));
  p.reset();
  EXPECT_DOUBLE_EQ(p.forecast().sigma_us, 0.0);
}

TEST(CostModel, PriorThenEwma) {
  ReconfigCostModel m({50.0, 0.5});
  EXPECT_DOUBLE_EQ(m.swap_cost_us(), 50.0);
  m.observe_swap_us(10.0);
  EXPECT_EQ(m.observations(), 1u);
  EXPECT_LT(m.swap_cost_us(), 50.0);
  EXPECT_GT(m.swap_cost_us(), 10.0);
}

// ---- controller decision semantics -------------------------------------

std::vector<double> arrivals_with_sigma(std::size_t n, double spread) {
  // Evenly spaced arrivals whose sample stddev scales with `spread`.
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i)
    a[i] = spread * static_cast<double>(i);
  return a;
}

TEST(Controller, ReviewCadenceFollowsReviewEvery) {
  ControllerOptions opts;
  opts.review_every = 4;
  BarrierController c(8, {BarrierKind::kCombiningTree, 4}, opts);
  const auto a = arrivals_with_sigma(8, 1.0);
  for (int i = 0; i < 3; ++i) {
    c.observe_episode(a);
    EXPECT_FALSE(c.review_due());
  }
  c.observe_episode(a);
  EXPECT_TRUE(c.review_due());
  (void)c.review(4);
  EXPECT_FALSE(c.review_due());
  EXPECT_EQ(c.reviews(), 1u);
}

TEST(Controller, HoldsAtTheOptimum) {
  ControllerOptions opts;
  opts.review_every = 1;
  BarrierController c(8, {BarrierKind::kCombiningTree, 4}, opts);
  // Seed the predictor, then pin the incumbent to whatever the sweep
  // says is optimal for that signal: every further review must hold.
  const auto a = arrivals_with_sigma(8, 2.0);
  for (int i = 0; i < 32; ++i) c.observe_episode(a);
  const double sigma = c.signal().sigma_us;
  const ControlChoice opt = sweep_optimal_choice(
      8, opts, std::vector<double>{sigma}, c.signal().persistence);
  BarrierController pinned(8, opt, opts);
  for (int i = 0; i < 32; ++i) pinned.observe_episode(a);
  const Decision d = pinned.review(32);
  EXPECT_EQ(d.action, Decision::Action::kHold) << decision_line(d);
  EXPECT_EQ(pinned.current(), opt);
}

TEST(Controller, SwapsThenCoolsDown) {
  ControllerOptions opts;
  opts.review_every = 1;
  opts.cooldown_reviews = 2;
  opts.cost.prior_us = 0.0;  // disarm the gain veto for this test
  // Start far from optimal under a huge spread so the first review swaps.
  BarrierController c(64, {BarrierKind::kCombiningTree, 64}, opts);
  const auto a = arrivals_with_sigma(64, 0.001);  // tiny sigma
  for (int i = 0; i < 8; ++i) c.observe_episode(a);
  const Decision d1 = c.review(8);
  ASSERT_EQ(d1.action, Decision::Action::kSwap) << decision_line(d1);
  EXPECT_NE(c.current(), (ControlChoice{BarrierKind::kCombiningTree, 64}));
  // The next two reviews sit in the cooldown window regardless of signal.
  c.observe_episode(a);
  EXPECT_EQ(c.review(9).action, Decision::Action::kCooldown);
  c.observe_episode(a);
  EXPECT_EQ(c.review(10).action, Decision::Action::kCooldown);
  c.observe_episode(a);
  EXPECT_NE(c.review(11).action, Decision::Action::kCooldown);
  EXPECT_EQ(c.cooldowns(), 2u);
}

TEST(Controller, GainVetoBlocksUnamortizedSwaps) {
  ControllerOptions opts;
  opts.review_every = 1;
  opts.cost.prior_us = 1e9;  // absurd reconfiguration cost
  opts.amortize_phases = 1.0;
  BarrierController c(64, {BarrierKind::kCombiningTree, 64}, opts);
  const auto a = arrivals_with_sigma(64, 0.001);
  for (int i = 0; i < 8; ++i) c.observe_episode(a);
  const Decision d = c.review(8);
  EXPECT_EQ(d.action, Decision::Action::kGainTooSmall) << decision_line(d);
  EXPECT_EQ(c.swaps_decided(), 0u);
  EXPECT_EQ(c.gain_vetoes(), 1u);
}

TEST(Controller, CandidatesSpanKindsTimesDegrees) {
  ControllerOptions opts;
  opts.kinds = {BarrierKind::kCentral, BarrierKind::kCombiningTree};
  BarrierController c(8, {BarrierKind::kCombiningTree, 4}, opts);
  const auto grid = c.candidates();
  // kCentral contributes one shape; the tree contributes {2, 4, 8}.
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0], (ControlChoice{BarrierKind::kCentral, 8}));
  EXPECT_EQ(grid[1], (ControlChoice{BarrierKind::kCombiningTree, 2}));
  EXPECT_EQ(grid[3], (ControlChoice{BarrierKind::kCombiningTree, 8}));
}

TEST(Controller, OverrideCurrentReaimsWithCooldown) {
  ControllerOptions opts;
  opts.review_every = 1;
  opts.cooldown_reviews = 1;
  BarrierController c(8, {BarrierKind::kCombiningTree, 4}, opts);
  c.override_current({BarrierKind::kCentral, 8});
  EXPECT_EQ(c.current(), (ControlChoice{BarrierKind::kCentral, 8}));
  c.observe_episode(arrivals_with_sigma(8, 1.0));
  EXPECT_EQ(c.review(1).action, Decision::Action::kCooldown);
}

TEST(Controller, DecisionLineIsStable) {
  Decision d;
  d.review = 3;
  d.phase = 96;
  d.sigma_forecast_us = 12.5;
  d.persistence = 0.25;
  d.from = {BarrierKind::kCombiningTree, 4};
  d.to = {BarrierKind::kCentral, 8};
  d.predicted_from_us = 1.5;
  d.predicted_to_us = 1.0;
  d.swap_cost_us = 50.0;
  d.action = Decision::Action::kSwap;
  EXPECT_EQ(decision_line(d),
            std::string("review=3 phase=96 sigma=12.500 persist=0.250 from=") +
                imbar::to_string(BarrierKind::kCombiningTree) + "/4 to=" +
                imbar::to_string(BarrierKind::kCentral) +
                " pred_from=1.500 pred_to=1.000 cost=50.000 action=swap");
}

TEST(Controller, RejectsZeroParticipants) {
  EXPECT_THROW(BarrierController(0, {}), std::invalid_argument);
}

// ---- telemetry ---------------------------------------------------------

TEST(ControlMetrics, DecisionLogValidatesAndCounts) {
  ControllerOptions opts;
  opts.review_every = 1;
  BarrierController c(8, {BarrierKind::kCombiningTree, 4}, opts);
  const auto a = arrivals_with_sigma(8, 1.0);
  for (int i = 0; i < 5; ++i) {
    c.observe_episode(a);
    (void)c.review(static_cast<std::uint64_t>(i) + 1);
  }
  const std::string doc = decision_log_json(c, "unit");
  EXPECT_EQ(obs::validate_control_log(obs::json::parse(doc)), 5u);

  obs::MetricsRegistry reg;
  fold_control_metrics(c, reg);
  const std::string metrics = reg.snapshot_json();
  EXPECT_NE(metrics.find("control.v1.reviews"), std::string::npos);
  EXPECT_NE(metrics.find("control.v1.sigma_forecast_us"), std::string::npos);
}

TEST(ControlMetrics, ValidatorRejectsTamperedLogs) {
  ControllerOptions opts;
  opts.review_every = 1;
  BarrierController c(8, {BarrierKind::kCombiningTree, 4}, opts);
  c.observe_episode(arrivals_with_sigma(8, 1.0));
  (void)c.review(1);
  std::string doc = decision_log_json(c, "unit");
  // Claiming one more review than the decisions array holds must fail.
  const auto pos = doc.find("\"reviews\":1");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 11, "\"reviews\":2");
  EXPECT_THROW(obs::validate_control_log(obs::json::parse(doc)),
               std::runtime_error);
}

// ---- regimes -----------------------------------------------------------

TEST(Regimes, TargetTrajectories) {
  const std::uint64_t total = 100;
  const RegimeSpec step = canned_regime(RegimeKind::kStep);
  EXPECT_DOUBLE_EQ(regime_target_sigma(step, 0, total), step.sigma_lo_us);
  EXPECT_DOUBLE_EQ(regime_target_sigma(step, 49, total), step.sigma_lo_us);
  EXPECT_DOUBLE_EQ(regime_target_sigma(step, 50, total), step.sigma_hi_us);

  const RegimeSpec ramp = canned_regime(RegimeKind::kRamp);
  EXPECT_DOUBLE_EQ(regime_target_sigma(ramp, 0, total), ramp.sigma_lo_us);
  EXPECT_DOUBLE_EQ(regime_target_sigma(ramp, 99, total), ramp.sigma_hi_us);
  EXPECT_LT(regime_target_sigma(ramp, 10, total),
            regime_target_sigma(ramp, 40, total));

  const RegimeSpec osc = canned_regime(RegimeKind::kOscillating);
  // Default period total/8 = 12 -> half-period 6.
  EXPECT_DOUBLE_EQ(regime_target_sigma(osc, 0, total), osc.sigma_lo_us);
  EXPECT_DOUBLE_EQ(regime_target_sigma(osc, 6, total), osc.sigma_hi_us);
}

TEST(Regimes, ArrivalsAreDeterministic) {
  const RegimeSpec spec = canned_regime(RegimeKind::kHeavyTail, 7);
  std::vector<double> a(8), b(8);
  regime_arrivals(spec, 13, 100, a);
  regime_arrivals(spec, 13, 100, b);
  EXPECT_EQ(a, b);
  regime_arrivals(spec, 14, 100, b);
  EXPECT_NE(a, b);
}

TEST(Regimes, PersistenceShowsUpInTheEstimator) {
  RegimeSpec iid = canned_regime(RegimeKind::kConstant);
  RegimeSpec sticky = canned_regime(RegimeKind::kConstant);
  sticky.persistence = 0.95;
  obs::ArrivalSpreadEstimator e_iid, e_sticky;
  std::vector<double> a(8);
  for (std::uint64_t ph = 0; ph < 64; ++ph) {
    regime_arrivals(iid, ph, 64, a);
    e_iid.observe_episode(a);
    regime_arrivals(sticky, ph, 64, a);
    e_sticky.observe_episode(a);
  }
  // Deterministic draws: the realized means are ~0.57 and ~-0.05; the
  // thresholds just need to separate the two cleanly. (With n=8 procs
  // the small-sample Spearman of a rho=0.95 process sits well below
  // rho itself.)
  EXPECT_GT(e_sticky.rank_correlation_lag1(), 0.45);
  EXPECT_LT(std::abs(e_iid.rank_correlation_lag1()), 0.25);
}

// ---- sim twin ----------------------------------------------------------

TEST(SimControllerModel, AccountsEveryPhase) {
  sim::Engine engine;
  sim::ControllerModel model(
      engine, {4, 10, 100.0},
      [](std::uint64_t, std::span<double> out) {
        for (std::size_t i = 0; i < out.size(); ++i)
          out[i] = static_cast<double>(i);  // spread 3
      },
      [](std::uint64_t, std::span<const double>) { return 2.0; },
      [](std::uint64_t ph, std::span<const double>, double) {
        return ph == 5 ? 7.0 : 0.0;  // one reconfiguration
      });
  model.start();
  engine.run();
  EXPECT_EQ(model.phases_run(), 10u);
  EXPECT_DOUBLE_EQ(model.total_sync_delay_us(), 20.0);
  EXPECT_DOUBLE_EQ(model.total_swap_cost_us(), 7.0);
  EXPECT_DOUBLE_EQ(model.total_spread_us(), 30.0);
  // makespan = 10 * (100 work + 3 spread + 2 delay) + 7 cost.
  EXPECT_DOUBLE_EQ(model.makespan(), 10 * 105.0 + 7.0);
}

TEST(SimControllerModel, RejectsNegativeCallbacks) {
  sim::Engine engine;
  sim::ControllerModel model(
      engine, {4, 1, 0.0},
      [](std::uint64_t, std::span<double> out) {
        for (auto& x : out) x = 0.0;
      },
      [](std::uint64_t, std::span<const double>) { return -1.0; },
      [](std::uint64_t, std::span<const double>, double) { return 0.0; });
  model.start();
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(SimTwin, RunsAreReproducible) {
  TwinOptions t;
  t.procs = 8;
  t.phases = 256;
  t.regime = canned_regime(RegimeKind::kStep);
  const TwinResult a = run_twin(t);
  const TwinResult b = run_twin(t);
  EXPECT_EQ(a.log_json, b.log_json);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.final_choice, b.final_choice);
  EXPECT_EQ(a.sigma_by_phase, b.sigma_by_phase);
  EXPECT_EQ(a.reviews, t.phases / t.controller.review_every);
}

// ---- the live decorator ------------------------------------------------

TEST(ControlledBarrier, PlainTrafficCountsEpisodesExactly) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = 4;
  cfg.degree = 2;
  ControlledBarrier barrier(cfg);
  constexpr std::uint64_t kEpochs = 200;
  test::run_threads(4, [&](std::size_t tid) {
    for (std::uint64_t g = 0; g < kEpochs; ++g) barrier.arrive_and_wait(tid);
  });
  EXPECT_EQ(barrier.phases(), kEpochs);
  EXPECT_EQ(barrier.counters().episodes, kEpochs);
  EXPECT_EQ(barrier.controller().estimator().episodes(), kEpochs);
}

TEST(ControlledBarrier, ForceSwapChangesTheInner) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = 4;
  cfg.degree = 2;
  ControlledBarrier barrier(cfg);
  EXPECT_EQ(barrier.current(),
            (ControlChoice{BarrierKind::kCombiningTree, 2}));
  barrier.force_swap(BarrierKind::kCentral, 4);
  EXPECT_EQ(barrier.current().kind, BarrierKind::kCentral);
  EXPECT_EQ(barrier.swaps(), 1u);
  // Traffic still works on the fresh inner.
  test::run_threads(4, [&](std::size_t tid) {
    for (int g = 0; g < 50; ++g) barrier.arrive_and_wait(tid);
  });
  EXPECT_EQ(barrier.phases(), 50u);
}

TEST(ControlledBarrier, ReviewsRunAtTheConfiguredCadence) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = 4;
  cfg.degree = 2;
  ControlledBarrier::Options opts;
  opts.controller.review_every = 8;
  ControlledBarrier barrier(cfg, std::move(opts));
  test::run_threads(4, [&](std::size_t tid) {
    for (int g = 0; g < 64; ++g) barrier.arrive_and_wait(tid);
  });
  EXPECT_EQ(barrier.controller().reviews(), 8u);
  // Every decided swap was applied by the phase winner.
  EXPECT_EQ(barrier.swaps(), barrier.controller().swaps_decided());
}

TEST(ControlledBarrier, DisabledReviewsOnlyObserve) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = 4;
  cfg.degree = 2;
  ControlledBarrier::Options opts;
  opts.controller.review_every = 4;
  opts.reviews_enabled = false;
  ControlledBarrier barrier(cfg, std::move(opts));
  test::run_threads(4, [&](std::size_t tid) {
    for (int g = 0; g < 32; ++g) barrier.arrive_and_wait(tid);
  });
  EXPECT_EQ(barrier.controller().reviews(), 0u);
  EXPECT_EQ(barrier.swaps(), 0u);
  EXPECT_EQ(barrier.signal().episodes, 32u);
}

TEST(ControlledBarrier, InstrumentedFactoryComposes) {
  auto recorder = std::make_shared<obs::EpisodeRecorder>(4);
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCentral;
  cfg.participants = 4;
  ControlledBarrier::Options opts;
  opts.factory = obs::instrumenting_inner_factory(recorder);
  opts.reviews_enabled = false;
  ControlledBarrier barrier(cfg, std::move(opts));
  test::run_threads(4, [&](std::size_t tid) {
    for (int g = 0; g < 20; ++g) barrier.arrive_and_wait(tid);
  });
  barrier.force_swap(BarrierKind::kCombiningTree, 2);
  test::run_threads(4, [&](std::size_t tid) {
    for (int g = 0; g < 20; ++g) barrier.arrive_and_wait(tid);
  });
  EXPECT_EQ(barrier.counters().episodes, 40u);
  // Both generations recorded episodes through the instrumented wrap.
  EXPECT_GE(recorder->snapshot_all().size(), 40u);
}

TEST(ControlledBarrier, RejectsZeroParticipants) {
  BarrierConfig cfg;
  cfg.participants = 0;
  EXPECT_THROW(ControlledBarrier{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace imbar::control
