// ControlChurn — the swap-storm soak the nightly TSan leg repeats
// until-fail: a live ControlledBarrier under FaultPlan-scheduled
// stragglers while reconfigurations hammer it from both directions
// (controller reviews on an aggressive cadence, plus foreign threads
// storming force_swap across every kind). The properties are the
// ledger ones — every generation accounted, episodes exact, every
// decided swap applied — which is precisely what a racy fence would
// corrupt first. Heavier than the tier-1 conformance swap property
// (tests/test_conformance.cpp): real stragglers, concurrent foreign
// swappers, and review-driven swaps all at once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "barrier/factory.hpp"
#include "barrier_test_support.hpp"
#include "control/control_metrics.hpp"
#include "control/controlled_barrier.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "robust/fault_plan.hpp"

namespace imbar::control {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::uint64_t kEpochs = 300;

robust::FaultPlan straggler_plan(std::uint64_t seed) {
  robust::FaultSpec spec;
  spec.straggler_prob = 0.15;
  spec.straggler_mean_us = 250.0;
  return robust::FaultPlan::make(seed, kThreads, kEpochs, spec);
}

void sleep_us(double us) {
  if (us > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(us));
}

BarrierConfig start_config() {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = kThreads;
  cfg.degree = 2;
  return cfg;
}

/// Traffic + straggler schedule + per-tid generation ledger; returns
/// the ledgers for exactness checks.
std::vector<std::uint64_t> run_traffic(ControlledBarrier& barrier,
                                       const robust::FaultPlan& plan,
                                       std::atomic<bool>& done) {
  std::vector<std::uint64_t> ledger(kThreads, 0);
  test::run_threads(
      kThreads,
      [&](std::size_t tid) {
        for (std::uint64_t g = 0; g < kEpochs; ++g) {
          sleep_us(plan.straggler_delay_us(static_cast<std::size_t>(g), tid));
          barrier.arrive_and_wait(tid);
          ++ledger[tid];
        }
      },
      std::chrono::seconds(300));
  done.store(true, std::memory_order_release);
  return ledger;
}

void expect_exact_ledger(const ControlledBarrier& barrier,
                         const std::vector<std::uint64_t>& ledger) {
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(ledger[t], kEpochs) << "tid " << t;
  EXPECT_EQ(barrier.phases(), kEpochs);
  EXPECT_EQ(barrier.counters().episodes, kEpochs);
}

// Review-driven churn only: aggressive cadence, no cost gate, zero
// cooldown — the controller swaps as often as its model ever wants to.
TEST(ControlChurn, ReviewDrivenSwapsUnderStragglers) {
  ControlledBarrier::Options opts;
  opts.controller.review_every = 4;
  opts.controller.cooldown_reviews = 0;
  opts.controller.cost.prior_us = 0.0;
  opts.controller.amortize_phases = 1.0;
  opts.controller.hysteresis = 1.0;
  ControlledBarrier barrier(start_config(), std::move(opts));

  std::atomic<bool> done{false};
  const auto ledger = run_traffic(barrier, straggler_plan(0xC0FFEE), done);

  expect_exact_ledger(barrier, ledger);
  EXPECT_EQ(barrier.controller().reviews(), kEpochs / 4);
  EXPECT_EQ(barrier.swaps(), barrier.controller().swaps_decided());
  // Quiescent decision log still validates after the churn.
  EXPECT_EQ(obs::validate_control_log(
                obs::json::parse(decision_log_json(barrier.controller(),
                                                   "churn/reviews"))),
            barrier.controller().reviews());
}

// Foreign force_swap storm (two concurrent swappers, cycling through
// every kind) on top of review-driven swaps and stragglers. Each storm
// is progress-gated — it waits for a phase to complete before fencing
// again — because a fence tears the in-flight episode: a fixed-cadence
// storm that out-paces the cohort's rendezvous latency (several
// scheduler quanta on a one-core host) livelocks traffic. Two gated
// storms still put up to two fences inside every single phase.
TEST(ControlChurn, ForceSwapStormPlusReviews) {
  ControlledBarrier::Options opts;
  opts.controller.review_every = 8;
  ControlledBarrier barrier(start_config(), std::move(opts));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> forced{0};
  std::vector<std::thread> storms;
  for (int s = 0; s < 2; ++s)
    storms.emplace_back([&, s] {
      std::size_t i = static_cast<std::size_t>(s);  // desynchronized laps
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t p0 = barrier.phases();
        const BarrierKind kind =
            kAllBarrierKinds[i % kAllBarrierKinds.size()];
        barrier.force_swap(kind, (i % 2) ? 2 : kThreads);
        forced.fetch_add(1, std::memory_order_relaxed);
        ++i;
        while (!done.load(std::memory_order_acquire) &&
               barrier.phases() <= p0)
          sleep_us(50.0);
      }
    });

  const auto ledger = run_traffic(barrier, straggler_plan(0xBADF00D), done);
  for (auto& t : storms) t.join();

  expect_exact_ledger(barrier, ledger);
  // Every applied swap is either a forced one or a review decision.
  EXPECT_EQ(barrier.swaps(),
            forced.load() + barrier.controller().swaps_decided());
  EXPECT_GE(forced.load(), kAllBarrierKinds.size())
      << "storm too slow to cycle every kind — lengthen the run";
}

// Quiescent-read regression (mirrors the AdaptiveBarrier one): after
// the cohort joins, controller()/signal()/counters() reads must be
// race-free against the retired traffic — TSan is the real assertion.
TEST(ControlChurn, QuiescentReadsAfterChurnAreRaceFree) {
  ControlledBarrier::Options opts;
  opts.controller.review_every = 4;
  ControlledBarrier barrier(start_config(), std::move(opts));

  std::atomic<bool> done{false};
  const auto ledger = run_traffic(barrier, straggler_plan(0x5EED), done);

  expect_exact_ledger(barrier, ledger);
  const SignalSnapshot sig = barrier.signal();
  EXPECT_EQ(sig.episodes, kEpochs);
  EXPECT_GE(sig.sigma_us, 0.0);
  EXPECT_EQ(barrier.controller().estimator().episodes(), kEpochs);
  // The lock-free mirror agrees with the controller's incumbent.
  EXPECT_EQ(barrier.current(), barrier.controller().current());
}

}  // namespace
}  // namespace imbar::control
