// The convergence differential (ISSUE 9's headline property): the
// closed-loop controller, run through the deterministic sim twin over
// every canned sigma regime, must settle inside its indifference band
// of the offline sweep oracle within a bounded number of reviews,
// never blow the oscillation budget, and produce byte-identical
// decision logs on any exec worker count. The live leg re-runs the
// same controller code with real threads and asserts the ledger /
// liveness half of the contract (see src/check/controller_convergence.hpp
// for the full criterion and why the band — not exact oracle match —
// is the honest assertion).
#include <gtest/gtest.h>

#include <cstdint>

#include "check/controller_convergence.hpp"
#include "control/regimes.hpp"

namespace imbar::check {
namespace {

ConvergenceOptions suite_options() {
  ConvergenceOptions opts;
  // Tighter cadence than the default so 2048 phases hold 64 reviews:
  // enough post-transition reviews for every regime's settle budget.
  opts.controller.review_every = 32;
  return opts;
}

// Leg 1: per-regime convergence against the sweep oracle. One EXPECT
// per regime so a failure names exactly which trajectory broke.
TEST(ControllerConvergence, TwinSettlesOnOracleForEveryRegime) {
  const ConvergenceReport report =
      check_controller_convergence(suite_options());
  ASSERT_EQ(report.verdicts.size(), control::kAllRegimeKinds.size());
  for (const RegimeVerdict& v : report.verdicts)
    EXPECT_TRUE(v.passed) << control::to_string(v.spec.kind) << ": "
                          << v.detail;
  EXPECT_TRUE(report.passed) << report.detail;
  // Non-vacuity: the initial config cannot coincide with every oracle.
  EXPECT_GT(report.total_swaps, 0u);
}

// The harness itself must fail when given an impossible budget —
// guards against the band check degenerating into "always pass".
TEST(ControllerConvergence, HarnessRejectsZeroSwapBudgetSuites) {
  ConvergenceOptions opts = suite_options();
  // A short suite suffices: one over-budget regime fails the report.
  opts.phases = 512;
  opts.max_swaps = 0;
  opts.oscillation_slack = 0;
  const ConvergenceReport report = check_controller_convergence(opts);
  EXPECT_FALSE(report.passed);
  EXPECT_FALSE(report.detail.empty());
}

// Leg 2: byte-identical decision logs and imbar.control.v1 documents
// across exec workers 1/2/4.
TEST(ControllerConvergence, TwinDecisionLogsAreWorkerCountInvariant) {
  ConvergenceOptions opts = suite_options();
  // Identity needs decision lines to compare, not full convergence:
  // 512 phases give 16 reviews per regime, plenty of bytes to diverge.
  opts.phases = 512;
  const std::string divergence = check_twin_worker_identity(opts);
  EXPECT_EQ(divergence, "");
}

// Twin determinism across *processes* is implied by determinism across
// repeated in-process runs of the same options (no globals, no clocks).
TEST(ControllerConvergence, TwinRunsAreBitwiseRepeatable) {
  control::TwinOptions t;
  t.procs = 8;
  t.phases = 1024;
  t.controller.review_every = 32;
  t.regime = control::canned_regime(control::RegimeKind::kOscillating);
  const control::TwinResult a = control::run_twin(t);
  const control::TwinResult b = control::run_twin(t);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.log_json, b.log_json);
  EXPECT_EQ(a.final_choice, b.final_choice);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
}

TEST(ControllerConvergence, StationaryPhaseResolution) {
  const std::uint64_t total = 2048;
  using control::RegimeKind;
  EXPECT_EQ(regime_stationary_from(
                control::canned_regime(RegimeKind::kConstant), total),
            0u);
  EXPECT_EQ(regime_stationary_from(
                control::canned_regime(RegimeKind::kHeavyTail), total),
            0u);
  EXPECT_EQ(regime_stationary_from(control::canned_regime(RegimeKind::kStep),
                                   total),
            total / 2);
  control::RegimeSpec ramp = control::canned_regime(RegimeKind::kRamp);
  ramp.switch_phases = 300;
  EXPECT_EQ(regime_stationary_from(ramp, total), 300u);
  EXPECT_EQ(regime_stationary_from(
                control::canned_regime(RegimeKind::kOscillating), total),
            UINT64_MAX);
}

// Leg 3: real threads, plain inner generations.
TEST(ControllerConvergence, LiveControllerKeepsTheLedgerExact) {
  LiveConvergenceOptions opts;
  const LiveConvergenceResult r = run_live_controller(opts);
  EXPECT_TRUE(r.passed) << r.detail;
  EXPECT_EQ(r.phases, opts.phases);
  EXPECT_EQ(r.episodes, opts.phases);
  EXPECT_EQ(r.swaps_applied, r.swaps_decided);
  EXPECT_FALSE(r.log_json.empty());
}

// Leg 3, instrumented: every inner generation built through the
// observability wrapper — the swap fence must compose with it too.
TEST(ControllerConvergence, LiveControllerComposesWithInstrumentation) {
  LiveConvergenceOptions opts;
  opts.phases = 120;
  opts.instrument = true;
  const LiveConvergenceResult r = run_live_controller(opts);
  EXPECT_TRUE(r.passed) << r.detail;
  EXPECT_EQ(r.episodes, opts.phases);
}

}  // namespace
}  // namespace imbar::check
