// Core facade: imbalance estimation, degree choice, recommendations.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <vector>

#include "barrier/factory.hpp"
#include "core/degree_chooser.hpp"
#include "core/facade.hpp"
#include "core/imbalance_estimator.hpp"

#include "barrier_test_support.hpp"

namespace imbar {
namespace {

TEST(ImbalanceEstimator, Validation) {
  EXPECT_THROW(ImbalanceEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(ImbalanceEstimator(1.5), std::invalid_argument);
  ImbalanceEstimator e;
  std::vector<double> one{1.0};
  EXPECT_THROW(e.record_iteration(one), std::invalid_argument);
}

TEST(ImbalanceEstimator, FirstIterationSeedsEwma) {
  ImbalanceEstimator e(0.2);
  e.record_iteration(std::vector<double>{10.0, 12.0, 14.0});
  EXPECT_DOUBLE_EQ(e.mean(), 12.0);
  EXPECT_DOUBLE_EQ(e.sigma(), 2.0);
  EXPECT_DOUBLE_EQ(e.last_sigma(), 2.0);
  EXPECT_EQ(e.iterations(), 1u);
}

TEST(ImbalanceEstimator, EwmaSmoothsSpikes) {
  ImbalanceEstimator e(0.1);
  for (int i = 0; i < 20; ++i)
    e.record_iteration(std::vector<double>{10.0, 10.0, 10.0, 10.0});
  EXPECT_NEAR(e.sigma(), 0.0, 1e-12);
  // One wild iteration barely moves the smoothed value.
  e.record_iteration(std::vector<double>{0.0, 0.0, 100.0, 100.0});
  EXPECT_GT(e.last_sigma(), 50.0);
  EXPECT_LT(e.sigma(), 10.0);
}

TEST(ImbalanceEstimator, TracksDriftingImbalance) {
  ImbalanceEstimator e(0.3);
  for (int i = 1; i <= 40; ++i) {
    const double s = static_cast<double>(i);
    e.record_iteration(std::vector<double>{10.0 - s, 10.0 + s});
  }
  // sigma of {10-s, 10+s} is s * sqrt(2); the EWMA should be near the
  // late-iteration values.
  EXPECT_GT(e.sigma(), 30.0);
  EXPECT_DOUBLE_EQ(e.mean(), 10.0);
}

TEST(ImbalanceEstimator, CvAndReset) {
  ImbalanceEstimator e;
  e.record_iteration(std::vector<double>{8.0, 12.0});
  EXPECT_GT(e.cv(), 0.0);
  e.reset();
  EXPECT_EQ(e.iterations(), 0u);
  EXPECT_DOUBLE_EQ(e.sigma(), 0.0);
  EXPECT_DOUBLE_EQ(e.cv(), 0.0);
}

TEST(ChooseDegree, ZeroImbalanceIsClassical) {
  EXPECT_LE(choose_degree(64, 0.0), 4u);
  EXPECT_GE(choose_degree(64, 0.0), 2u);
  EXPECT_LE(choose_degree(4096, 0.0), 4u);
}

TEST(ChooseDegree, GrowsWithSigma) {
  // Not strictly monotone step-by-step (non-full ceil trees make the
  // candidate ranking bumpy), but the trend and endpoints must hold.
  const std::size_t calm = choose_degree(1024, 0.0);
  const std::size_t wild = choose_degree(1024, 512.0);
  EXPECT_LE(calm, 4u);
  EXPECT_GE(wild, 32u);
  EXPECT_GE(choose_degree(1024, 128.0), choose_degree(1024, 2.0));
}

TEST(ChooseDegree, HeadlineResult) {
  // The abstract: "the optimum degree ... increases from four to as
  // much as 128 in a 4K system as the load imbalance increases."
  EXPECT_LE(choose_degree(4096, 0.0), 4u);
  EXPECT_GE(choose_degree(4096, 400.0), 64u);
}

TEST(ChooseDegree, TimedVariantScales) {
  // Only the ratio sigma/t_c matters.
  EXPECT_EQ(choose_degree_timed(256, 500.0, 20.0), choose_degree(256, 25.0));
  EXPECT_EQ(choose_degree_timed(256, 50.0, 2.0), choose_degree(256, 25.0));
}

TEST(ChooseDegree, Validation) {
  EXPECT_EQ(choose_degree(1, 0.0), 2u);  // degenerate: any degree works
  EXPECT_THROW(choose_degree_timed(64, -1.0, 20.0), std::invalid_argument);
  EXPECT_THROW(choose_degree_timed(64, 1.0, 0.0), std::invalid_argument);
}

TEST(Recommend, PredictabilitySelectsDynamicPlacement) {
  const auto steady = recommend_config(64, 10.0, 20.0, false);
  EXPECT_EQ(steady.kind, BarrierKind::kCombiningTree);
  const auto predictable = recommend_config(64, 10.0, 20.0, true);
  EXPECT_EQ(predictable.kind, BarrierKind::kDynamicPlacement);
  EXPECT_EQ(predictable.participants, 64u);
  EXPECT_GE(predictable.degree, 2u);
}

TEST(Recommend, DegreeFollowsImbalance) {
  const auto tight = recommend_config(256, 0.0, 20.0);
  const auto wide = recommend_config(256, 5000.0, 20.0);
  EXPECT_GT(wide.degree, tight.degree);
}

TEST(Describe, MentionsKindAndDegree) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kMcsTree;
  cfg.participants = 16;
  cfg.degree = 8;
  const std::string s = describe(cfg);
  EXPECT_NE(s.find("mcs"), std::string::npos);
  EXPECT_NE(s.find("16"), std::string::npos);
  EXPECT_NE(s.find("8"), std::string::npos);
  cfg.kind = BarrierKind::kCentral;
  EXPECT_EQ(describe(cfg).find("degree"), std::string::npos);
}

TEST(BarrierConfigQuorum, ValidationOfQuorumKnobs) {
  // The graceful-degradation knobs ride on BarrierConfig and are
  // validated by make_barrier even though only the quorum decorator
  // consumes them: one config describes the whole decorated stack.
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCentral;
  cfg.participants = 4;

  cfg.quorum.quorum = 5;  // k > participants
  EXPECT_THROW(make_barrier(cfg), std::invalid_argument);
  cfg.quorum.quorum = 3;
  cfg.quorum.deadline_budget = std::chrono::nanoseconds(-1);
  EXPECT_THROW(make_barrier(cfg), std::invalid_argument);
  cfg.quorum.deadline_budget = std::chrono::milliseconds(1);
  cfg.quorum.hysteresis = 0;
  EXPECT_THROW(make_barrier(cfg), std::invalid_argument);

  // Valid corners: k == participants, zero budget (release the moment
  // the quorum forms), and the disabled default.
  cfg.quorum.hysteresis = 1;
  cfg.quorum.quorum = 4;
  cfg.quorum.deadline_budget = std::chrono::nanoseconds::zero();
  EXPECT_NO_THROW(make_barrier(cfg));
  cfg.quorum = QuorumConfig{};
  EXPECT_NO_THROW(make_barrier(cfg));
}

TEST(Version, IsNonEmpty) { EXPECT_GT(std::string(version()).size(), 0u); }

TEST(TunedBarrier, RebuildsWhenImbalanceGrows) {
  TunedBarrier tuned(64, /*tc_us=*/20.0);
  EXPECT_EQ(tuned.current_degree(), 4u);
  std::vector<double> calm(64, 1000.0);
  for (int i = 0; i < 20; ++i) tuned.report_iteration(calm);
  EXPECT_EQ(tuned.rebuilds(), 0u);

  // Now a wide spread: alternate +-10000us around the mean.
  std::vector<double> wild(64);
  for (std::size_t i = 0; i < 64; ++i)
    wild[i] = 1000.0 + (i % 2 ? 10000.0 : -10000.0);
  bool rebuilt = false;
  for (int i = 0; i < 40; ++i) rebuilt |= tuned.report_iteration(wild);
  EXPECT_TRUE(rebuilt);
  EXPECT_GT(tuned.current_degree(), 4u);
  EXPECT_GE(tuned.rebuilds(), 1u);
  EXPECT_EQ(tuned.barrier().participants(), 64u);
}

TEST(TunedBarrier, EstimatorIsExposed) {
  TunedBarrier tuned(8, 20.0);
  tuned.report_iteration(std::vector<double>(8, 5.0));
  EXPECT_EQ(tuned.estimator().iterations(), 1u);
}

TEST(RecommendController, SeedsFromTheStaticRecommendation) {
  const auto cfg = recommend_config(16, 200.0, 20.0, true);
  const auto bar = recommend_controller(16, 200.0, 20.0, true);
  EXPECT_EQ(bar->participants(), 16u);
  EXPECT_EQ(bar->current().kind, cfg.kind);
  EXPECT_EQ(bar->current().degree, cfg.degree);
  EXPECT_EQ(bar->swaps(), 0u);
}

TEST(RecommendController, TcCalibratesTheController) {
  control::ControlledBarrier::Options opts;
  opts.controller.review_every = 5;  // preserved through the facade
  const auto bar = recommend_controller(8, 0.0, 35.5, false, std::move(opts));
  EXPECT_DOUBLE_EQ(bar->controller().options().t_c_us, 35.5);
  EXPECT_EQ(bar->controller().options().review_every, 5u);
}

TEST(RecommendController, RunsTraffic) {
  const auto bar = recommend_controller(4, 0.0, 20.0);
  test::run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 50; ++i) bar->arrive_and_wait(tid);
  });
  EXPECT_EQ(bar->counters().episodes, 50u);
  EXPECT_EQ(bar->phases(), 50u);
}

}  // namespace
}  // namespace imbar
