// Degree arithmetic and the Eq. 1 closed form.
#include <gtest/gtest.h>

#include "model/degree.hpp"

namespace imbar {
namespace {

TEST(TreeLevels, KnownValues) {
  EXPECT_EQ(tree_levels(4096, 2), 12u);
  EXPECT_EQ(tree_levels(4096, 4), 6u);
  EXPECT_EQ(tree_levels(4096, 8), 4u);
  EXPECT_EQ(tree_levels(4096, 16), 3u);
  EXPECT_EQ(tree_levels(4096, 64), 2u);
  EXPECT_EQ(tree_levels(4096, 4096), 1u);
  // The paper's Figure 2 degrees: 2,4,8,16,32,64 -> depths 12,6,4,3,3,2.
  EXPECT_EQ(tree_levels(4096, 32), 3u);
}

TEST(TreeLevels, CeilingBehaviour) {
  EXPECT_EQ(tree_levels(5, 2), 3u);
  EXPECT_EQ(tree_levels(9, 3), 2u);
  EXPECT_EQ(tree_levels(10, 3), 3u);
  EXPECT_EQ(tree_levels(1, 2), 1u);
}

TEST(TreeLevels, Validation) {
  EXPECT_THROW(tree_levels(0, 2), std::invalid_argument);
  EXPECT_THROW(tree_levels(4, 1), std::invalid_argument);
}

TEST(IsFullTree, PowersOnly) {
  EXPECT_TRUE(is_full_tree(64, 2));
  EXPECT_TRUE(is_full_tree(64, 4));
  EXPECT_TRUE(is_full_tree(64, 8));
  EXPECT_TRUE(is_full_tree(64, 64));
  EXPECT_FALSE(is_full_tree(64, 16));
  EXPECT_FALSE(is_full_tree(64, 3));
  EXPECT_FALSE(is_full_tree(56, 4));
  EXPECT_TRUE(is_full_tree(56, 56));
}

TEST(FullTreeDegrees, MatchPaperFeasibleSets) {
  // For p = 4096 the feasible analytic degrees exclude 32 — which is
  // why Figure 2 shows no approximation bar for degree 32.
  EXPECT_EQ(full_tree_degrees(4096),
            (std::vector<std::size_t>{2, 4, 8, 16, 64, 4096}));
  EXPECT_EQ(full_tree_degrees(64), (std::vector<std::size_t>{2, 4, 8, 64}));
  EXPECT_EQ(full_tree_degrees(256), (std::vector<std::size_t>{2, 4, 16, 256}));
}

TEST(FullTreeDegrees, PrimeHasOnlyItself) {
  EXPECT_EQ(full_tree_degrees(7), (std::vector<std::size_t>{7}));
}

TEST(SweepDegrees, PowersOfTwoPlusCentral) {
  EXPECT_EQ(sweep_degrees(64),
            (std::vector<std::size_t>{2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(sweep_degrees(56), (std::vector<std::size_t>{2, 4, 8, 16, 32, 56}));
  EXPECT_EQ(sweep_degrees(2), (std::vector<std::size_t>{2}));
}

TEST(Eq1, ClosedFormAndOptimum) {
  // T = L * d * t_c; for p = 4096, t_c = 20: degree 2 -> 480, 4 -> 480,
  // 8 -> 640.
  EXPECT_DOUBLE_EQ(eq1_sync_delay(4096, 2, 20.0), 480.0);
  EXPECT_DOUBLE_EQ(eq1_sync_delay(4096, 4, 20.0), 480.0);
  EXPECT_DOUBLE_EQ(eq1_sync_delay(4096, 8, 20.0), 640.0);
  EXPECT_DOUBLE_EQ(eq1_sync_delay(4096, 4096, 20.0), 81920.0);
}

TEST(Eq1, MinimizedNearE) {
  // Over integer degrees the continuous optimum d = e lands on 3 (or
  // the 2/4 tie for power-of-two populations).
  const std::size_t p = 3 * 3 * 3 * 3 * 3;  // 243
  double best = 1e300;
  std::size_t best_d = 0;
  for (std::size_t d = 2; d <= 9; ++d) {
    const double v = eq1_sync_delay(p, d, 1.0);
    if (v < best) {
      best = v;
      best_d = d;
    }
  }
  EXPECT_EQ(best_d, 3u);
}

}  // namespace
}  // namespace imbar
