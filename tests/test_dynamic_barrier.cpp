// Threaded dynamic-placement barrier: migration behaviour and the
// victor/victim protocol under real concurrency.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "barrier/dynamic_placement_barrier.hpp"
#include "barrier/mcs_tree_barrier.hpp"
#include "util/prng.hpp"

#include "barrier_test_support.hpp"

namespace imbar {
namespace {

using test::run_threads;

void expect_placement_invariant(const DynamicPlacementBarrier& bar) {
  const auto snap = bar.placement_snapshot();
  std::vector<int> count(bar.topology().counters(), 0);
  for (int c : snap) ++count[static_cast<std::size_t>(c)];
  for (std::size_t c = 0; c < count.size(); ++c)
    ASSERT_EQ(count[c], bar.topology().attached_count(static_cast<int>(c)))
        << "counter " << c;
}

TEST(DynamicBarrier, ConsistentlySlowThreadMigratesToRoot) {
  DynamicPlacementBarrier bar(6, 2);
  const int slow = 5;
  const int d0 = bar.depth_of(slow);
  ASSERT_GT(d0, 1);
  // Convergence is only *eventual*: on a loaded (or single-core,
  // oversubscribed) host the scheduler can deschedule a "fast" thread
  // for longer than the straggler's sleep, stalling or transiently
  // reversing the migration. Run in rounds, escalating the straggler's
  // delay each round until it dominates the scheduling noise, and check
  // between rounds instead of demanding a fixed episode count.
  bool at_root = false;
  for (int round = 0; round < 7 && !at_root; ++round) {
    const auto delay = std::chrono::microseconds(500L << round);  // ..32 ms
    run_threads(6, [&](std::size_t tid) {
      for (int i = 0; i < 100; ++i) {
        if (tid == static_cast<std::size_t>(slow))
          std::this_thread::sleep_for(delay);
        bar.arrive_and_wait(tid);
      }
    });
    at_root = bar.depth_of(slow) == 1;  // attached at the root
  }
  EXPECT_TRUE(at_root) << "slow thread still at depth " << bar.depth_of(slow)
                       << " after 700 escalating episodes";
  expect_placement_invariant(bar);
  EXPECT_GT(bar.counters().swaps, 0u);
}

TEST(DynamicBarrier, SwapsAreAccountedWithVictimReads) {
  DynamicPlacementBarrier bar(8, 2);
  run_threads(8, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(1, tid);
    for (int i = 0; i < 400; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(rng.below(120)));
      bar.arrive_and_wait(tid);
    }
  });
  const auto c = bar.counters();
  EXPECT_EQ(c.episodes, 400u);
  // Each swap produces at most one victim read, possibly deferred past
  // the last episode.
  EXPECT_LE(c.extra_comms, c.swaps);
  EXPECT_GE(c.extra_comms + 8, c.swaps);
  expect_placement_invariant(bar);
}

TEST(DynamicBarrier, BalancedLoadKeepsCommOverheadBounded) {
  const std::size_t d = 4;
  DynamicPlacementBarrier bar(8, d);
  const std::size_t episodes = 600;
  run_threads(8, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(9, tid);
    for (std::size_t i = 0; i < episodes; ++i) {
      if (rng.below(16) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      bar.arrive_and_wait(tid);
    }
  });
  const auto c = bar.counters();
  // Paper Section 5: overhead bounded by 1/(d+1) extra comms/processor.
  const double per_proc_per_episode =
      static_cast<double>(c.extra_comms) / static_cast<double>(episodes) / 8.0;
  EXPECT_LE(per_proc_per_episode, 1.0 / (d + 1) + 1e-9);
}

TEST(DynamicBarrier, AlternatingSlowThreadsStayConsistent) {
  DynamicPlacementBarrier bar(6, 2);
  run_threads(6, [&](std::size_t tid) {
    for (int i = 0; i < 300; ++i) {
      const std::size_t slow = (i / 25) % 2 == 0 ? 4u : 1u;
      if (tid == slow)
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      bar.arrive_and_wait(tid);
    }
  });
  expect_placement_invariant(bar);
  EXPECT_EQ(bar.counters().episodes, 300u);
}

TEST(DynamicBarrier, MatchesStaticMcsUpdateTotalsWhenBalanced) {
  // With zero swaps, communication equals the static MCS tree's
  // p + counters - 1 per episode; swaps only ever add victim reads.
  DynamicPlacementBarrier bar(6, 4);
  run_threads(6, [&](std::size_t tid) {
    for (int i = 0; i < 100; ++i) bar.arrive_and_wait(tid);
  });
  const auto c = bar.counters();
  const std::size_t counters = bar.topology().counters();
  EXPECT_EQ(c.updates, 100u * (6u + counters - 1u));
}

TEST(DynamicBarrier, TwoThreadsDegenerate) {
  DynamicPlacementBarrier bar(2, 2);
  run_threads(2, [&](std::size_t tid) {
    for (int i = 0; i < 500; ++i) bar.arrive_and_wait(tid);
  });
  EXPECT_EQ(bar.counters().episodes, 500u);
}

TEST(DynamicBarrier, FuzzySplitWithMigration) {
  DynamicPlacementBarrier bar(5, 2);
  run_threads(5, [&](std::size_t tid) {
    for (int i = 0; i < 300; ++i) {
      if (tid == 4) std::this_thread::sleep_for(std::chrono::microseconds(200));
      bar.arrive(tid);
      // slack work
      bar.wait(tid);
    }
  });
  EXPECT_EQ(bar.counters().episodes, 300u);
  EXPECT_LE(bar.depth_of(4), 2);
  expect_placement_invariant(bar);
}

TEST(DynamicBarrier, SnapshotResolvesPendingDisplacements) {
  // After a run, every thread's snapshot position must be a counter
  // whose capacity admits it — even if the owner hasn't yet noticed a
  // swap that displaced it.
  DynamicPlacementBarrier bar(7, 2);
  run_threads(7, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(3, tid);
    for (int i = 0; i < 250; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(rng.below(150)));
      bar.arrive_and_wait(tid);
    }
  });
  expect_placement_invariant(bar);
}

}  // namespace
}  // namespace imbar
