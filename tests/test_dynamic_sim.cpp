// Dynamic placement in the simulator: swap mechanics, invariants,
// migration behaviour, ring constraints, swap policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simbarrier/tree_sim.hpp"
#include "util/prng.hpp"

namespace imbar::simb {
namespace {

SimOptions dyn_opts(SwapPolicy policy = SwapPolicy::kCascade) {
  SimOptions o;
  o.t_c = 20.0;
  o.placement = Placement::kDynamic;
  o.swap_policy = policy;
  return o;
}

/// Attachment multiset must always match the topology's per-counter
/// capacity (swaps are permutations).
void expect_placement_invariant(const TreeBarrierSim& sim) {
  const auto& topo = sim.topology();
  std::vector<int> count(topo.counters(), 0);
  for (int c : sim.placement()) ++count[static_cast<std::size_t>(c)];
  for (std::size_t c = 0; c < topo.counters(); ++c)
    ASSERT_EQ(count[c], topo.attached_count(static_cast<int>(c)))
        << "counter " << c;
}

/// Run `iters` iterations where `slow` is always late, starting at
/// absolute time `base` (pass the previous return value to continue on
/// the same simulator). Returns the time after the last release.
double run_slow_proc(TreeBarrierSim& sim, std::size_t procs, int slow,
                     std::size_t iters, double lateness = 500.0,
                     double base = 0.0) {
  for (std::size_t i = 0; i < iters; ++i) {
    std::vector<double> signals(procs, base);
    signals[static_cast<std::size_t>(slow)] = base + lateness;
    const auto r = sim.run_iteration(signals);
    base = r.release + 10.0;
  }
  return base;
}

TEST(DynamicSim, SlowProcessorMigratesToRoot) {
  const Topology topo = Topology::mcs(64, 4);
  TreeBarrierSim sim(topo, dyn_opts());
  const int slow = 63;  // a leaf-attached processor
  const int initial_depth = topo.depth_to_root(topo.initial_counter()[slow]);
  EXPECT_GT(initial_depth, 1);

  run_slow_proc(sim, 64, slow, 20);
  EXPECT_EQ(sim.placement()[static_cast<std::size_t>(slow)], topo.root());
  expect_placement_invariant(sim);
}

TEST(DynamicSim, StaticPlacementNeverMoves) {
  const Topology topo = Topology::mcs(64, 4);
  SimOptions o = dyn_opts();
  o.placement = Placement::kStatic;
  TreeBarrierSim sim(topo, o);
  run_slow_proc(sim, 64, 63, 10);
  EXPECT_EQ(sim.placement(), topo.initial_counter());
  EXPECT_EQ(sim.total_swaps(), 0u);
  EXPECT_EQ(sim.total_extras(), 0u);
}

TEST(DynamicSim, LastProcDepthConvergesToOne) {
  const Topology topo = Topology::mcs(256, 4);
  TreeBarrierSim sim(topo, dyn_opts());
  const int slow = 200;
  const double base = run_slow_proc(sim, 256, slow, 30);
  // One more measured iteration: the slow processor is now at the root
  // and performs exactly one update (depth 1, the paper's asymptote).
  std::vector<double> signals(256, base);
  signals[slow] = base + 500.0;
  const auto r = sim.run_iteration(signals);
  EXPECT_EQ(r.last_proc, slow);
  EXPECT_EQ(r.last_proc_depth, 1);
  // And its delay collapsed to a single counter update.
  EXPECT_DOUBLE_EQ(r.sync_delay, 20.0);
}

TEST(DynamicSim, SwapsProduceVictimPenalties) {
  const Topology topo = Topology::mcs(64, 4);
  TreeBarrierSim sim(topo, dyn_opts());
  run_slow_proc(sim, 64, 63, 10);
  EXPECT_GT(sim.total_swaps(), 0u);
  // Every swap is eventually paid for by exactly one victim read
  // (within one iteration of slack).
  EXPECT_GE(sim.total_extras() + 64, sim.total_swaps());
  EXPECT_LE(sim.total_extras(), sim.total_swaps());
}

TEST(DynamicSim, CommOverheadBoundedByPaperFormula) {
  // At most one swap per counter per iteration: extra comms per
  // iteration <= counters <= p / (d+1) * (something); the paper states
  // the per-processor bound 1/(d+1).
  const std::size_t p = 256, d = 4;
  const Topology topo = Topology::mcs(p, d);
  TreeBarrierSim sim(topo, dyn_opts());
  std::vector<double> signals(p);
  Xoshiro256 rng(5);
  double base = 0.0;
  const std::size_t iters = 50;
  for (std::size_t i = 0; i < iters; ++i) {
    for (auto& s : signals) s = base + rng.uniform() * 300.0;
    base = sim.run_iteration(signals).release + 10.0;
  }
  const double per_proc_per_iter =
      static_cast<double>(sim.total_extras()) /
      static_cast<double>(iters) / static_cast<double>(p);
  EXPECT_LE(per_proc_per_iter, 1.0 / (d + 1) + 1e-9);
}

TEST(DynamicSim, PlacementInvariantUnderRandomWorkloads) {
  const Topology topo = Topology::mcs(100, 3);
  TreeBarrierSim sim(topo, dyn_opts());
  Xoshiro256 rng(11);
  std::vector<double> signals(100);
  double base = 0.0;
  for (int i = 0; i < 60; ++i) {
    for (auto& s : signals) s = base + rng.uniform() * 500.0;
    base = sim.run_iteration(signals).release + 5.0;
    expect_placement_invariant(sim);
  }
}

TEST(DynamicSim, AlternatingSlowProcessorsSwapBackAndForth) {
  const Topology topo = Topology::mcs(64, 4);
  TreeBarrierSim sim(topo, dyn_opts());
  double base = 0.0;
  for (int i = 0; i < 40; ++i) {
    std::vector<double> signals(64, base);
    signals[static_cast<std::size_t>(i % 2 == 0 ? 60 : 20)] = base + 500.0;
    base = sim.run_iteration(signals).release + 10.0;
    expect_placement_invariant(sim);
  }
  // Both must still be placed somewhere legal; at least one of them
  // near the top.
  const int d60 = topo.depth_to_root(sim.placement()[60]);
  const int d20 = topo.depth_to_root(sim.placement()[20]);
  EXPECT_LE(std::min(d60, d20), 2);
}

TEST(DynamicSim, RingConstraintKeepsProcessorsInRing) {
  const Topology topo = Topology::mcs_rings({32, 24}, 4);
  TreeBarrierSim sim(topo, dyn_opts());
  // Slowest processor is in ring 1; the root belongs to ring 0, so it
  // must never reach the root.
  const int slow = 40;  // ring 1
  ASSERT_EQ(topo.proc_ring()[slow], 1);
  run_slow_proc(sim, 56, slow, 30);
  EXPECT_NE(sim.placement()[slow], topo.root());
  // But it should have climbed to the top of its ring subtree.
  const int pos = sim.placement()[slow];
  EXPECT_EQ(topo.node(pos).ring, 1);
  EXPECT_LE(topo.depth_to_root(pos), 2);
  expect_placement_invariant(sim);
}

TEST(DynamicSim, RingConstraintCanBeDisabled) {
  const Topology topo = Topology::mcs_rings({32, 24}, 4);
  SimOptions o = dyn_opts();
  o.respect_rings = false;
  TreeBarrierSim sim(topo, o);
  run_slow_proc(sim, 56, 40, 30);
  EXPECT_EQ(sim.placement()[40], topo.root());
}

TEST(DynamicSim, SwapPoliciesAllConvergeDifferently) {
  // Cascade and single-highest reach the root; one-level climbs slowly
  // but monotonically.
  for (auto policy : {SwapPolicy::kCascade, SwapPolicy::kSingleHighest,
                      SwapPolicy::kOneLevel}) {
    const Topology topo = Topology::mcs(256, 4);
    TreeBarrierSim sim(topo, dyn_opts(policy));
    const int slow = 255;
    const int d0 = topo.depth_to_root(topo.initial_counter()[slow]);
    const double base = run_slow_proc(sim, 256, slow, 2);
    const int d2 = topo.depth_to_root(sim.placement()[slow]);
    EXPECT_LT(d2, d0);
    run_slow_proc(sim, 256, slow, 20, 500.0, base);
    EXPECT_EQ(sim.placement()[slow], topo.root());
    expect_placement_invariant(sim);
  }
}

TEST(DynamicSim, OneLevelClimbsExactlyOneStepPerIteration) {
  const Topology topo = Topology::mcs(256, 2);
  TreeBarrierSim sim(topo, dyn_opts(SwapPolicy::kOneLevel));
  const int slow = 255;
  int prev_depth = topo.depth_to_root(topo.initial_counter()[slow]);
  double base = 0.0;
  for (int i = 0; i < 6; ++i) {
    std::vector<double> signals(256, base);
    signals[slow] = base + 500.0;
    base = sim.run_iteration(signals).release + 10.0;
    const int depth = topo.depth_to_root(sim.placement()[slow]);
    EXPECT_GE(depth, prev_depth - 1);
    EXPECT_LE(depth, prev_depth);
    prev_depth = depth;
  }
}

TEST(DynamicSim, CascadeSwapsCoverTheLateProcessorsClimb) {
  // With cascade semantics every fill above a processor's home counter
  // is a swap, so the iteration's swap count is at least the late
  // processor's climb (other processors fill counters too and may also
  // swap — simultaneous early arrivals make fills ambiguous among them).
  const Topology topo = Topology::mcs(64, 2);
  TreeBarrierSim sim(topo, dyn_opts(SwapPolicy::kCascade));
  std::vector<double> signals(64, 0.0);
  signals[63] = 500.0;
  const auto r = sim.run_iteration(signals);
  const int climbed =
      topo.depth_to_root(topo.initial_counter()[63]) -
      topo.depth_to_root(sim.placement()[63]);
  EXPECT_GT(climbed, 0);
  EXPECT_GE(r.swaps, static_cast<std::size_t>(climbed));
  expect_placement_invariant(sim);
}

}  // namespace
}  // namespace imbar::simb
