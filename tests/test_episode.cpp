// Multi-iteration episodes with fuzzy slack: the Figure 8 machinery.
#include <gtest/gtest.h>

#include "simbarrier/episode.hpp"
#include "workload/arrival.hpp"

namespace imbar::simb {
namespace {

SimOptions base_opts() {
  SimOptions o;
  o.t_c = 20.0;
  return o;
}

TEST(Episode, Validation) {
  TreeBarrierSim sim(Topology::mcs(16, 4), base_opts());
  IidGenerator wrong(8, make_normal(1000, 10), 1);
  EpisodeOptions eo;
  EXPECT_THROW(run_episode(sim, wrong, eo), std::invalid_argument);

  IidGenerator gen(16, make_normal(1000, 10), 1);
  eo.iterations = 5;
  eo.warmup = 5;
  EXPECT_THROW(run_episode(sim, gen, eo), std::invalid_argument);
}

TEST(Episode, AggregatesPostWarmupOnly) {
  TreeBarrierSim sim(Topology::mcs(16, 4), base_opts());
  IidGenerator gen(16, make_normal(1000.0, 50.0), 3);
  EpisodeOptions eo;
  eo.iterations = 30;
  eo.warmup = 10;
  const auto m = run_episode(sim, gen, eo);
  EXPECT_EQ(m.measured_iterations, 20u);
  EXPECT_EQ(m.sync_delays.size(), 20u);
  EXPECT_EQ(m.last_depths.size(), 20u);
  EXPECT_GT(m.mean_sync_delay, 0.0);
  EXPECT_GT(m.mean_last_depth, 0.0);
  EXPECT_GT(m.mean_comms_per_iter, 16.0);  // at least one update per proc
}

TEST(Episode, StaticMcsCommsAreExact) {
  const Topology topo = Topology::mcs(64, 4);
  TreeBarrierSim sim(topo, base_opts());
  IidGenerator gen(64, make_normal(1000.0, 30.0), 9);
  EpisodeOptions eo;
  eo.iterations = 20;
  eo.warmup = 4;
  const auto m = run_episode(sim, gen, eo);
  // Static placement: comms per iteration == p + counters - 1 exactly.
  EXPECT_DOUBLE_EQ(m.mean_comms_per_iter,
                   64.0 + static_cast<double>(topo.counters()) - 1.0);
  EXPECT_DOUBLE_EQ(m.mean_swaps_per_iter, 0.0);
}

TEST(Episode, ComparePlacementUsesIdenticalWorkload) {
  // Determinism: the same seed gives identical static runs regardless
  // of the dynamic run sharing the comparison.
  const Topology topo = Topology::mcs(64, 4);
  IidGenerator gen1(64, make_normal(5000.0, 100.0), 21);
  IidGenerator gen2(64, make_normal(5000.0, 100.0), 21);
  EpisodeOptions eo;
  eo.iterations = 40;
  eo.warmup = 8;
  eo.slack = 1000.0;
  const auto a = compare_placement(topo, base_opts(), gen1, eo);
  const auto b = compare_placement(topo, base_opts(), gen2, eo);
  EXPECT_DOUBLE_EQ(a.static_run.mean_sync_delay, b.static_run.mean_sync_delay);
  EXPECT_DOUBLE_EQ(a.dynamic_run.mean_sync_delay, b.dynamic_run.mean_sync_delay);
  EXPECT_DOUBLE_EQ(a.sync_speedup, b.sync_speedup);
}

TEST(Episode, ZeroSlackGivesNoDynamicAdvantage) {
  // Paper Figure 8, slack 0: prediction from the previous iteration is
  // worthless under iid noise; speedup ~= 1.
  const Topology topo = Topology::mcs(256, 4);
  IidGenerator gen(256, make_normal(10000.0, 250.0), 33);
  EpisodeOptions eo;
  eo.iterations = 60;
  eo.warmup = 10;
  eo.slack = 0.0;
  const auto cmp = compare_placement(topo, base_opts(), gen, eo);
  EXPECT_NEAR(cmp.sync_speedup, 1.0, 0.15);
}

TEST(Episode, LargeSlackGivesLargeDynamicSpeedup) {
  // Paper Figure 8, large slack: arrival order becomes persistent, the
  // late processor sits near the root, depth -> ~1.2 and speedup grows
  // toward depth_static / depth_dynamic.
  const Topology topo = Topology::mcs(256, 4);
  IidGenerator gen(256, make_normal(10000.0, 250.0), 34);
  EpisodeOptions eo;
  eo.iterations = 80;
  eo.warmup = 20;
  eo.slack = 4000.0;
  const auto cmp = compare_placement(topo, base_opts(), gen, eo);
  EXPECT_GT(cmp.sync_speedup, 1.5);
  EXPECT_LT(cmp.dynamic_run.mean_last_depth,
            cmp.static_run.mean_last_depth - 0.5);
  EXPECT_LT(cmp.dynamic_run.mean_last_depth, 2.0);
}

TEST(Episode, CommOverheadIsSmallAndBounded) {
  const std::size_t d = 4;
  const Topology topo = Topology::mcs(256, d);
  IidGenerator gen(256, make_normal(10000.0, 250.0), 35);
  EpisodeOptions eo;
  eo.iterations = 60;
  eo.warmup = 10;
  eo.slack = 2000.0;
  const auto cmp = compare_placement(topo, base_opts(), gen, eo);
  EXPECT_GE(cmp.comm_overhead, 1.0);
  // Paper bound: at most 1/(d+1) extra communications per processor.
  EXPECT_LE(cmp.comm_overhead, 1.0 + 1.0 / (d + 1));
}

TEST(Episode, SlackZeroDepthMatchesStatic) {
  const Topology topo = Topology::mcs(64, 4);
  IidGenerator gen(64, make_normal(10000.0, 250.0), 36);
  EpisodeOptions eo;
  eo.iterations = 40;
  eo.warmup = 10;
  eo.slack = 0.0;
  const auto cmp = compare_placement(topo, base_opts(), gen, eo);
  EXPECT_NEAR(cmp.dynamic_run.mean_last_depth, cmp.static_run.mean_last_depth,
              1.0);
}

TEST(Episode, SystemicImbalanceHelpsEvenWithoutSlack) {
  // With systemic bias the same processor is late every iteration, so
  // dynamic placement wins even at slack 0 — the other prediction-
  // friendly regime of Section 5.
  const Topology topo = Topology::mcs(256, 4);
  SystemicGenerator gen(256, 10000.0, 300.0, 30.0, 37);
  EpisodeOptions eo;
  eo.iterations = 60;
  eo.warmup = 15;
  eo.slack = 0.0;
  const auto cmp = compare_placement(topo, base_opts(), gen, eo);
  EXPECT_GT(cmp.sync_speedup, 1.2);
}

}  // namespace
}  // namespace imbar::simb
