// Differential determinism suite for the sharded sweep engine: every
// sweep entry point must produce *bit-identical* results for any worker
// count (threads in {1, 2, 4, hardware_concurrency}), across imbalance
// levels, both tree kinds, and both service orders — and a grid cell
// re-run in isolation must reproduce its full-sweep value. The serial
// (threads = 1) run is the reference; everything else is compared to it
// with exact floating-point equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/conformance.hpp"
#include "robust/fault_sweep.hpp"
#include "simbarrier/sweep.hpp"
#include "util/csv.hpp"

namespace imbar {
namespace {

/// Worker counts under test. hardware_concurrency dedupes into the list
/// (on a 1-core CI host it is just another name for 1).
std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts{1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

constexpr double kTc = 20.0;
const std::vector<double> kSigmas{0.0, 6.25 * kTc, 100.0 * kTc};

bool exactly_equal(const simb::DelayStats& a, const simb::DelayStats& b) {
  return a.mean_delay == b.mean_delay && a.mean_update == b.mean_update &&
         a.mean_contention == b.mean_contention &&
         a.mean_last_depth == b.mean_last_depth &&
         a.stddev_delay == b.stddev_delay;
}

TEST(ExecDeterminism, ArrivalSetsBitIdenticalAcrossThreadCounts) {
  for (double sigma : kSigmas) {
    const auto reference = simb::draw_arrival_sets(64, sigma, 24, 99);
    for (std::size_t threads : thread_counts()) {
      exec::Executor ex;
      ex.threads = threads;
      const auto sharded = simb::draw_arrival_sets(64, sigma, 24, 99, ex);
      EXPECT_EQ(reference, sharded)
          << "sigma=" << sigma << " threads=" << threads;
    }
  }
}

TEST(ExecDeterminism, SimulateDelayBitIdenticalAcrossThreadCounts) {
  for (simb::TreeKind kind : {simb::TreeKind::kPlain, simb::TreeKind::kMcs}) {
    for (sim::ServiceOrder order :
         {sim::ServiceOrder::kFifo, sim::ServiceOrder::kRandom}) {
      for (double sigma : kSigmas) {
        simb::SweepOptions opts;
        opts.trials = 12;
        opts.sigma = sigma;
        opts.t_c = kTc;
        opts.kind = kind;
        opts.service_order = order;
        const simb::DelayStats reference = simb::simulate_delay(32, 8, opts);
        for (std::size_t threads : thread_counts()) {
          opts.exec.threads = threads;
          const simb::DelayStats sharded = simb::simulate_delay(32, 8, opts);
          EXPECT_TRUE(exactly_equal(reference, sharded))
              << "kind=" << static_cast<int>(kind)
              << " order=" << static_cast<int>(order) << " sigma=" << sigma
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ExecDeterminism, FindOptimalDegreeBitIdenticalAcrossThreadCounts) {
  for (double sigma : kSigmas) {
    simb::SweepOptions opts;
    opts.trials = 10;
    opts.sigma = sigma;
    opts.t_c = kTc;
    const auto reference = simb::find_optimal_degree(32, opts);
    for (std::size_t threads : thread_counts()) {
      opts.exec.threads = threads;
      const auto sharded = simb::find_optimal_degree(32, opts);
      EXPECT_EQ(reference.best_degree, sharded.best_degree);
      EXPECT_EQ(reference.best_delay, sharded.best_delay);
      EXPECT_EQ(reference.delay_at_4, sharded.delay_at_4);
      EXPECT_EQ(reference.speedup_vs_4, sharded.speedup_vs_4);
      ASSERT_EQ(reference.degrees, sharded.degrees);
      ASSERT_EQ(reference.stats.size(), sharded.stats.size());
      for (std::size_t i = 0; i < reference.stats.size(); ++i)
        EXPECT_TRUE(exactly_equal(reference.stats[i], sharded.stats[i]))
            << "sigma=" << sigma << " threads=" << threads << " degree "
            << reference.degrees[i];
    }
  }
}

// A degree's value must not depend on which other degrees share the
// grid: simulate_delay on its own reproduces the find_optimal_degree
// cell exactly (sim streams are keyed by (seed, degree, trial), not by
// grid position).
TEST(ExecDeterminism, GridCellReproducesInIsolation) {
  simb::SweepOptions opts;
  opts.trials = 10;
  opts.sigma = 125.0;
  opts.t_c = kTc;
  const auto grid = simb::find_optimal_degree(32, opts);
  const auto arrivals =
      simb::draw_arrival_sets(32, opts.sigma, opts.trials, opts.seed);
  for (std::size_t i = 0; i < grid.degrees.size(); ++i) {
    const simb::DelayStats alone =
        simb::simulate_delay(32, grid.degrees[i], opts, arrivals);
    EXPECT_TRUE(exactly_equal(grid.stats[i], alone))
        << "degree " << grid.degrees[i];
  }
}

// The committed golden CSV (tests/data/sweep_golden.csv) was generated
// serially; a threads=2 run must reproduce it byte for byte.
TEST(ExecDeterminism, GoldenCsvReproducedWithTwoWorkers) {
  const std::string golden_path =
      std::string(IMBAR_TEST_DATA_DIR) + "/sweep_golden.csv";
  std::ifstream in(golden_path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  const std::string golden = os.str();
  ASSERT_FALSE(golden.empty()) << "missing " << golden_path;

  const std::string out_path =
      ::testing::TempDir() + "exec_determinism_golden.csv";
  {
    CsvWriter csv(out_path,
                  {"procs", "sigma", "degree", "mean_delay", "stddev_delay"});
    for (const std::size_t procs : {std::size_t{8}, std::size_t{32}}) {
      for (const double sigma : {0.0, 10.0}) {
        simb::SweepOptions opts;
        opts.trials = 10;
        opts.sigma = sigma;
        opts.exec.threads = 2;
        const auto res = simb::find_optimal_degree(procs, opts);
        for (std::size_t i = 0; i < res.degrees.size(); ++i)
          csv.write_row_numeric({static_cast<double>(procs), sigma,
                                 static_cast<double>(res.degrees[i]),
                                 res.stats[i].mean_delay,
                                 res.stats[i].stddev_delay});
      }
    }
  }
  std::ifstream gen_in(out_path, std::ios::binary);
  std::ostringstream gen_os;
  gen_os << gen_in.rdbuf();
  EXPECT_EQ(gen_os.str(), golden)
      << "threads=2 sweep drifted from the serial golden file";
}

// ---- fault-sweep cell isolation ----------------------------------------

robust::FaultSweepOptions small_fault_opts() {
  robust::FaultSweepOptions opts;
  opts.procs = 64;
  opts.iterations = 40;
  opts.deaths = 2;
  return opts;
}

bool exactly_equal(const robust::FaultSweepCell& a,
                   const robust::FaultSweepCell& b) {
  return a.straggler_prob == b.straggler_prob &&
         a.result.completed_iterations == b.result.completed_iterations &&
         a.result.broken_episodes == b.result.broken_episodes &&
         a.result.survivors == b.result.survivors &&
         a.result.rebuilds == b.result.rebuilds &&
         a.result.mean_sync_delay == b.result.mean_sync_delay &&
         a.result.sync_delays == b.result.sync_delays &&
         a.result.total_comms == b.result.total_comms &&
         a.result.total_swaps == b.result.total_swaps &&
         a.comms_per_episode == b.comms_per_episode;
}

// The regression the ShardedSeeder rework exists for: before it, cell
// seeds were fixed constants, so a row's value silently depended on
// nothing at all (every sweep reused one plan); now seeds are keyed by
// the cell's probability, and a cell re-run alone — or inside a
// different probability list — reproduces the full-sweep row exactly.
TEST(ExecDeterminism, FaultSweepCellReproducesInIsolation) {
  const auto opts = small_fault_opts();
  const std::vector<double> probs{0.0, 0.01, 0.05, 0.2};
  const auto full = robust::run_fault_sweep(opts, probs);
  ASSERT_EQ(full.size(), probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const auto alone = robust::run_fault_sweep_cell(opts, probs[i]);
    EXPECT_TRUE(exactly_equal(full[i], alone)) << "prob " << probs[i];
  }
  // Also inside a reordered / truncated sweep.
  const auto subset = robust::run_fault_sweep(opts, {0.2, 0.01});
  EXPECT_TRUE(exactly_equal(subset[0], full[3]));
  EXPECT_TRUE(exactly_equal(subset[1], full[1]));
}

TEST(ExecDeterminism, FaultSweepBitIdenticalAcrossThreadCounts) {
  const auto opts = small_fault_opts();
  const std::vector<double> probs{0.0, 0.05, 0.2};
  const auto reference = robust::run_fault_sweep(opts, probs);
  for (std::size_t threads : thread_counts()) {
    exec::Executor ex;
    ex.threads = threads;
    const auto sharded = robust::run_fault_sweep(opts, probs, ex);
    ASSERT_EQ(sharded.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_TRUE(exactly_equal(reference[i], sharded[i]))
          << "threads=" << threads << " prob " << probs[i];
  }
}

TEST(ExecDeterminism, FaultCellSeedsDependOnValueNotList) {
  const auto seeds = robust::fault_cell_seeds(7, 0.05);
  EXPECT_EQ(seeds.plan, robust::fault_cell_seeds(7, 0.05).plan);
  EXPECT_EQ(seeds.generator, robust::fault_cell_seeds(7, 0.05).generator);
  EXPECT_NE(seeds.plan, robust::fault_cell_seeds(7, 0.2).plan);
  EXPECT_NE(seeds.plan, seeds.generator);
  EXPECT_NE(seeds.plan, robust::fault_cell_seeds(8, 0.05).plan);
}

// ---- conformance adversarial sweep -------------------------------------

// The (pattern x seed) grid sharded over 2 workers must report the same
// verdict as the serial sweep, for every barrier kind. Small cohorts:
// each sweep worker runs a full real-thread cohort per cell.
TEST(ExecDeterminism, AdversarialSweepMatchesSerialVerdictForAllKinds) {
  for (BarrierKind kind : kAllBarrierKinds) {
    const auto config = check::conformance_config(kind, 4, 2);
    check::ConformanceOptions serial;
    serial.epochs = 12;
    check::ConformanceOptions sharded = serial;
    sharded.sweep_threads = 2;
    const auto a = check::check_adversarial_schedules(config, serial);
    const auto b = check::check_adversarial_schedules(config, sharded);
    EXPECT_TRUE(a.passed) << to_string(kind) << ": " << a.detail;
    EXPECT_EQ(a.passed, b.passed) << to_string(kind);
    EXPECT_EQ(a.detail, b.detail) << to_string(kind);
  }
}

}  // namespace
}  // namespace imbar
