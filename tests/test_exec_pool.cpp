// Unit contract for the exec subsystem: TaskPool lifetime (including
// shutdown with tasks still queued), exception propagation through
// futures and parallel_for_chunked, ShardedSeeder stream independence,
// and the chunked-loop edge cases the sweeps rely on.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include "exec/parallel_for.hpp"
#include "exec/sharded_seeder.hpp"
#include "exec/task_pool.hpp"
#include "util/prng.hpp"

namespace imbar::exec {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareConcurrencyAtLeastOne) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
}

TEST(TaskPool, RunsEveryTaskAndCountsThem) {
  constexpr std::size_t kTasks = 200;
  std::atomic<std::size_t> ran{0};
  TaskPool pool(3);
  ASSERT_EQ(pool.size(), 3u);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    futures.push_back(pool.submit([&] { ++ran; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), kTasks);

  const TaskPoolMetrics m = pool.metrics();
  EXPECT_EQ(m.submitted, kTasks);
  EXPECT_EQ(m.executed, kTasks);
  ASSERT_EQ(m.tasks_per_worker.size(), 3u);
  std::uint64_t per_worker_sum = 0;
  for (std::uint64_t t : m.tasks_per_worker) per_worker_sum += t;
  EXPECT_EQ(per_worker_sum, kTasks);
}

// Shutdown-with-pending-tasks is part of the contract: the destructor
// drains the queue, so every future from submit() becomes ready even
// when the pool dies with most of its work still queued behind a slow
// first task.
TEST(TaskPool, DestructorDrainsQueuedTasks) {
  constexpr std::size_t kQueued = 64;
  std::atomic<std::size_t> ran{0};
  std::promise<void> release;
  auto released = release.get_future().share();
  std::vector<std::future<void>> futures;
  {
    TaskPool pool(1);
    futures.push_back(pool.submit([&, released] {
      released.wait();  // hold the single worker so the rest stays queued
      ++ran;
    }));
    for (std::size_t i = 0; i < kQueued; ++i)
      futures.push_back(pool.submit([&] { ++ran; }));
    release.set_value();
    // ~TaskPool here: stop intake, drain, join.
  }
  EXPECT_EQ(ran.load(), kQueued + 1);
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    EXPECT_NO_THROW(f.get());
  }
}

// submit() after shutdown began throws instead of silently dropping the
// task. Only a task already running during the drain can observe this
// state, so that is how the test reaches it.
TEST(TaskPool, SubmitDuringShutdownThrowsLogicError) {
  std::atomic<bool> threw{false};
  std::promise<void> started;
  auto pool = std::make_unique<TaskPool>(1);
  // Raw pointer: the TaskPool object outlives the task (the destructor
  // joins), but the unique_ptr is already nulled while ~TaskPool runs.
  TaskPool* raw = pool.get();
  auto f = pool->submit([&, raw] {
    started.set_value();
    // Give ~TaskPool (which runs as soon as started resolves) ample time
    // to flip the stopping flag; its first action is exactly that.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    try {
      (void)raw->submit([] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  started.get_future().wait();
  pool.reset();
  EXPECT_NO_THROW(f.get());
  EXPECT_TRUE(threw.load());
}

TEST(TaskPool, FuturePropagatesTaskException) {
  TaskPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(TaskPool, ObserverSeesEveryTaskWithItsWorker) {
  constexpr std::size_t kTasks = 50;
  std::atomic<std::size_t> observed{0};
  std::atomic<bool> worker_in_range{true};
  TaskPool pool(2);
  pool.set_task_observer([&](std::size_t worker, std::uint64_t) {
    ++observed;
    if (worker >= pool.size()) worker_in_range = false;
  });
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < kTasks; ++i)
    futures.push_back(pool.submit([] {}));
  for (auto& f : futures) f.get();
  EXPECT_EQ(observed.load(), kTasks);
  EXPECT_TRUE(worker_in_range.load());
}

TEST(TaskPool, BusyTimeAccumulates) {
  TaskPool pool(1);
  pool.submit([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      })
      .get();
  const TaskPoolMetrics m = pool.metrics();
  ASSERT_EQ(m.busy_ns_per_worker.size(), 1u);
  EXPECT_GT(m.busy_ns_per_worker[0], 0u);
}

TEST(TaskPool, PendingCountsQueuedNotRunning) {
  // The backpressure signal the service layer's drain batching reads:
  // tasks waiting in the queue, excluding the one a worker holds.
  TaskPool pool(1);
  std::promise<void> gate;
  std::promise<void> started;
  auto blocker = pool.submit([&, gate_future = gate.get_future().share()] {
    started.set_value();
    gate_future.wait();
  });
  started.get_future().wait();  // blocker is *running*, queue is empty
  EXPECT_EQ(pool.pending(), 0u);

  std::vector<std::future<void>> queued;
  for (int i = 0; i < 3; ++i) queued.push_back(pool.submit([] {}));
  EXPECT_EQ(pool.pending(), 3u);
  EXPECT_EQ(pool.metrics().pending, 3u);

  gate.set_value();
  blocker.get();
  for (auto& f : queued) f.get();
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_EQ(pool.metrics().pending, 0u);
}

// ---- parallel_for_chunked ----------------------------------------------

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  std::atomic<std::size_t> calls{0};
  const auto body = [&](std::size_t, std::size_t, std::size_t) { ++calls; };
  parallel_for_chunked(nullptr, 0, 0, 4, body);
  parallel_for_chunked(nullptr, 7, 3, 4, body);  // begin past end
  TaskPool pool(2);
  parallel_for_chunked(&pool, 5, 5, 1, body);
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ParallelFor, ZeroChunkThrows) {
  EXPECT_THROW(
      parallel_for_chunked(nullptr, 0, 10, 0,
                           [](std::size_t, std::size_t, std::size_t) {}),
      std::invalid_argument);
}

TEST(ParallelFor, SingleChunkCoversWholeRange) {
  std::size_t calls = 0, lo = 99, hi = 0, index = 99;
  parallel_for_chunked(nullptr, 2, 9, 100,
                       [&](std::size_t t, std::size_t l, std::size_t h) {
                         ++calls;
                         index = t;
                         lo = l;
                         hi = h;
                       });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 9u);
}

TEST(ParallelFor, ChunkLayoutIsAPureFunctionOfTheRange) {
  // The same (begin, end, chunk) must decompose identically inline and
  // on a pool — that layout stability is what sweep determinism rests on.
  const auto layout_with = [](TaskPool* pool) {
    std::vector<std::array<std::size_t, 3>> tasks(5);
    parallel_for_chunked(pool, 3, 17, 3,
                         [&](std::size_t t, std::size_t lo, std::size_t hi) {
                           tasks.at(t) = {t, lo, hi};
                         });
    return tasks;
  };
  TaskPool pool(4);
  const auto inline_layout = layout_with(nullptr);
  const auto pooled_layout = layout_with(&pool);
  EXPECT_EQ(inline_layout, pooled_layout);
  EXPECT_EQ(inline_layout.back(), (std::array<std::size_t, 3>{4, 15, 17}));
}

TEST(ParallelFor, RethrowsLowestTaskIndexExceptionAfterAllTasksRan) {
  TaskPool pool(4);
  std::atomic<std::size_t> ran{0};
  try {
    parallel_for_chunked(&pool, 0, 8, 1,
                         [&](std::size_t t, std::size_t, std::size_t) {
                           ++ran;
                           if (t == 5) throw std::runtime_error("task5");
                           if (t == 2) throw std::runtime_error("task2");
                         });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task2");
  }
  EXPECT_EQ(ran.load(), 8u);
}

TEST(Executor, WorkerCountFollowsConfiguration) {
  EXPECT_EQ(Executor{}.workers(), 1u);
  Executor three;
  three.threads = 3;
  EXPECT_EQ(three.workers(), 3u);
  TaskPool pool(2);
  Executor borrowed;
  borrowed.threads = 7;  // pool wins over threads
  borrowed.pool = &pool;
  EXPECT_EQ(borrowed.workers(), 2u);
}

TEST(Executor, InlineAndPooledRunsProduceTheSameSums) {
  const auto sum_with = [](const Executor& ex) {
    std::vector<std::uint64_t> slot(100);
    ex.run_chunked(0, slot.size(), 7,
                   [&](std::size_t, std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i) slot[i] = i * i;
                   });
    std::uint64_t total = 0;
    for (std::uint64_t v : slot) total += v;
    return total;
  };
  Executor serial;
  Executor pooled;
  pooled.threads = 4;
  EXPECT_EQ(sum_with(serial), sum_with(pooled));
}

// ---- ShardedSeeder ------------------------------------------------------

TEST(ShardedSeeder, MatchesXoshiroSubstreamKeying) {
  const ShardedSeeder seeder(0x1CCB5EEDULL);
  for (std::uint64_t i : {0ULL, 1ULL, 17ULL, 1'000'000ULL}) {
    Xoshiro256 direct = Xoshiro256::substream(0x1CCB5EEDULL, i);
    Xoshiro256 derived = seeder.stream(i);
    for (int draw = 0; draw < 4; ++draw)
      EXPECT_EQ(direct.next(), derived.next()) << "stream " << i;
  }
}

TEST(ShardedSeeder, NoCollisionsOverAMillionDerivedSeeds) {
  constexpr std::uint64_t kStreams = 1'000'000;
  const ShardedSeeder seeder(42);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(kStreams * 2);
  for (std::uint64_t i = 0; i < kStreams; ++i)
    ASSERT_TRUE(seen.insert(seeder.derive(i)).second)
        << "seed collision at index " << i;
}

TEST(ShardedSeeder, NestedShardsAreKeyedByValueNotPosition) {
  const ShardedSeeder seeder(7);
  // The shard for axis value 8 is the same object whether or not other
  // axis values were ever visited — there is no positional state.
  EXPECT_EQ(seeder.shard(8).derive(3), ShardedSeeder(7).shard(8).derive(3));
  EXPECT_NE(seeder.shard(8).derive(3), seeder.shard(9).derive(3));
  EXPECT_NE(seeder.shard(8).derive(3), seeder.shard(8).derive(4));
}

}  // namespace
}  // namespace imbar::exec
