// Oversubscription soak for the exec subsystem (ctest -L stress).
//
// Several submitter threads hammer one TaskPool whose worker count
// already oversubscribes the host, while sharded sweeps run on top —
// the regime the sweep engine sees when a bench pins threads=0 on a
// small CI box. Hangs are caught by the barrier_test_support watchdog
// rather than a 25-minute ctest timeout.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <vector>

#include "barrier_test_support.hpp"
#include "exec/parallel_for.hpp"
#include "exec/task_pool.hpp"
#include "simbarrier/sweep.hpp"

namespace imbar::exec {
namespace {

TEST(ExecStress, ConcurrentSubmittersOnAnOversubscribedPool) {
  const std::size_t workers = 3 * resolve_threads(0) + 1;
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kTasksEach = 2000;

  TaskPool pool(workers);
  std::atomic<std::uint64_t> ran{0};
  test::run_threads(kSubmitters, [&](std::size_t) {
    std::vector<std::future<void>> futures;
    futures.reserve(kTasksEach);
    for (std::size_t i = 0; i < kTasksEach; ++i)
      futures.push_back(pool.submit([&] {
        ran.fetch_add(1, std::memory_order_relaxed);
      }));
    for (auto& f : futures) f.get();
  });
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach);
  const TaskPoolMetrics m = pool.metrics();
  EXPECT_EQ(m.executed, kSubmitters * kTasksEach);
}

TEST(ExecStress, RepeatedPoolChurnUnderLoad) {
  // Construct/drain/destroy pools in a tight loop while tasks are still
  // queued — the shutdown-with-pending path, soaked.
  std::atomic<std::uint64_t> ran{0};
  test::run_threads(4, [&](std::size_t) {
    for (int round = 0; round < 60; ++round) {
      TaskPool pool(3);
      for (int i = 0; i < 40; ++i)
        (void)pool.submit(
            [&] { ran.fetch_add(1, std::memory_order_relaxed); });
      // Destructor drains: no future collection needed.
    }
  });
  EXPECT_EQ(ran.load(), 4u * 60u * 40u);
}

TEST(ExecStress, ShardedSweepsStayDeterministicUnderOversubscription) {
  // Many concurrent sweeps sharing one oversubscribed pool must all
  // reproduce the serial value — determinism under scheduler pressure,
  // not just in the quiet unit-test regime.
  simb::SweepOptions serial;
  serial.trials = 8;
  serial.sigma = 125.0;
  const simb::DelayStats reference = simb::simulate_delay(32, 8, serial);

  TaskPool pool(2 * resolve_threads(0) + 2);
  std::atomic<int> mismatches{0};
  test::run_threads(6, [&](std::size_t) {
    for (int round = 0; round < 10; ++round) {
      simb::SweepOptions opts = serial;
      opts.exec.pool = &pool;
      const simb::DelayStats got = simb::simulate_delay(32, 8, opts);
      if (got.mean_delay != reference.mean_delay ||
          got.stddev_delay != reference.stddev_delay)
        ++mismatches;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace imbar::exec
