// Fault-injected simulation: determinism and death semantics of the
// event-driven fault path (the Figure-8-style sweep under faults).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <stdexcept>

#include "dist/samplers.hpp"
#include "exec/parallel_for.hpp"
#include "robust/fault_plan.hpp"
#include "robust/fault_sim.hpp"
#include "robust/fault_sweep.hpp"
#include "simbarrier/episode.hpp"
#include "workload/arrival.hpp"

namespace imbar::robust {
namespace {

FaultSimOptions dynamic_tree(std::size_t degree, std::size_t iterations) {
  FaultSimOptions o;
  o.degree = degree;
  o.tree = simb::TreeKind::kMcs;
  o.sim.placement = simb::Placement::kDynamic;
  o.iterations = iterations;
  return o;
}

TEST(FaultSim, DeterministicForFixedSeeds) {
  FaultSpec spec;
  spec.straggler_prob = 0.05;
  spec.straggler_mean_us = 500.0;
  spec.lost_wakeup_prob = 0.05;
  spec.lost_wakeup_mean_us = 200.0;
  spec.deaths = 2;
  spec.death_after = 10;
  const FaultPlan plan = FaultPlan::make(7, 32, 120, spec);

  auto run = [&] {
    SystemicGenerator gen(32, 2000.0, 250.0, 50.0, 11);
    return run_faulty_sim(gen, plan, dynamic_tree(4, 120));
  };
  const FaultSimResult a = run();
  const FaultSimResult b = run();

  EXPECT_EQ(a.completed_iterations, b.completed_iterations);
  EXPECT_EQ(a.broken_episodes, b.broken_episodes);
  EXPECT_EQ(a.total_comms, b.total_comms);
  EXPECT_EQ(a.total_swaps, b.total_swaps);
  ASSERT_EQ(a.sync_delays.size(), b.sync_delays.size());
  for (std::size_t i = 0; i < a.sync_delays.size(); ++i)
    EXPECT_DOUBLE_EQ(a.sync_delays[i], b.sync_delays[i]);
}

TEST(FaultSim, DeathsAbortEpisodesAndShrinkTheCohort) {
  FaultSpec spec;
  spec.deaths = 3;
  spec.death_after = 5;
  const FaultPlan plan = FaultPlan::make(13, 16, 80, spec);

  SystemicGenerator gen(16, 2000.0, 200.0, 50.0, 3);
  const FaultSimResult r = run_faulty_sim(gen, plan, dynamic_tree(4, 80));

  EXPECT_EQ(r.survivors, 13u);
  // Deaths on distinct iterations each cost one episode; coinciding
  // deaths share one. Either way every episode is accounted for.
  EXPECT_GE(r.broken_episodes, 1u);
  EXPECT_LE(r.broken_episodes, 3u);
  EXPECT_EQ(r.completed_iterations + r.broken_episodes, 80u);
  EXPECT_GE(r.rebuilds, r.broken_episodes);  // one rebuild per broken episode
  EXPECT_GT(r.mean_sync_delay, 0.0);
}

TEST(FaultSim, NoFaultsMatchesPlainEpisodeLoop) {
  // An empty plan must leave the simulation byte-identical to the
  // unfaulted closed loop with zero slack.
  const FaultPlan plan = FaultPlan::make(1, 8, 60, FaultSpec{});
  SystemicGenerator gen_a(8, 1000.0, 150.0, 25.0, 5);
  const FaultSimResult faulted =
      run_faulty_sim(gen_a, plan, dynamic_tree(2, 60));

  SystemicGenerator gen_b(8, 1000.0, 150.0, 25.0, 5);
  simb::TreeBarrierSim sim(simb::Topology::mcs(8, 2), [] {
    simb::SimOptions o;
    o.placement = simb::Placement::kDynamic;
    return o;
  }());
  simb::EpisodeOptions eo;
  eo.iterations = 60;
  eo.warmup = 1;
  eo.slack = 0.0;
  const simb::EpisodeMetrics plain = simb::run_episode(sim, gen_b, eo);

  ASSERT_EQ(faulted.sync_delays.size(), 60u);
  // run_episode reports post-warmup iterations only; compare the tail.
  ASSERT_EQ(plain.sync_delays.size(), 59u);
  for (std::size_t i = 0; i < plain.sync_delays.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.sync_delays[i], faulted.sync_delays[i + 1]);
}

TEST(FaultSim, PerturberHookShiftsArrivals) {
  // The episode-layer injection point: delaying one processor's arrival
  // by a constant must never reduce any sync delay sample vs. unfaulted
  // ... it changes the last arrival, so just check the hook ran and the
  // runs stay deterministic.
  SystemicGenerator gen(8, 1000.0, 150.0, 25.0, 5);
  simb::TreeBarrierSim sim(simb::Topology::mcs(8, 2), simb::SimOptions{});
  simb::EpisodeOptions eo;
  eo.iterations = 40;
  eo.warmup = 5;
  std::size_t calls = 0;
  const simb::EpisodeMetrics m = simb::run_episode(
      sim, gen, eo, [&](std::size_t, std::span<double> signals) {
        ++calls;
        signals[0] += 500.0;  // proc 0 always arrives late
      });
  EXPECT_EQ(calls, 40u);
  EXPECT_GT(m.mean_sync_delay, 0.0);
}

TEST(FaultSim, EvictionsQuarantineWithoutAbortingEpisodes) {
  FaultSpec spec;
  spec.evictions = 3;
  spec.evict_after = 5;
  const FaultPlan plan = FaultPlan::make(21, 16, 80, spec);
  ASSERT_EQ(plan.evictions().size(), 3u);

  SystemicGenerator gen(16, 2000.0, 200.0, 50.0, 3);
  const FaultSimResult r = run_faulty_sim(gen, plan, dynamic_tree(4, 80));

  // An eviction quarantines (reparents) rather than killing the
  // episode: every iteration still completes.
  EXPECT_EQ(r.broken_episodes, 0u);
  EXPECT_EQ(r.completed_iterations, 80u);
  EXPECT_EQ(r.evicted, 3u);
  EXPECT_EQ(r.survivors, 13u);  // alive but quarantined members excluded
  EXPECT_GE(r.reparents + r.rebuilds, 3u);
  EXPECT_EQ(r.membership_log.size(), 3u);
  for (const MembershipChange& c : r.membership_log)
    EXPECT_EQ(c.kind, MembershipEventKind::kEvict);
}

TEST(FaultSim, ReadmissionRestoresTheCohort) {
  FaultSpec spec;
  spec.evictions = 2;
  spec.evict_after = 5;
  spec.readmit_delay = 10;
  const FaultPlan plan = FaultPlan::make(23, 16, 80, spec);
  for (const Eviction& e : plan.evictions()) {
    ASSERT_TRUE(e.readmit_iteration.has_value());
    EXPECT_EQ(*e.readmit_iteration, e.iteration + 10);
  }

  SystemicGenerator gen(16, 2000.0, 200.0, 50.0, 9);
  const FaultSimResult r = run_faulty_sim(gen, plan, dynamic_tree(4, 80));

  EXPECT_EQ(r.evicted, 2u);
  EXPECT_EQ(r.readmitted, 2u);
  EXPECT_EQ(r.survivors, 16u);  // everyone readmitted by the end
  // A readmission forces a full rebuild; readmissions coinciding on one
  // iteration share it.
  EXPECT_GE(r.rebuilds, 1u);
  EXPECT_EQ(r.membership_log.size(), 4u);
}

TEST(FaultSim, MembershipLogFormatIsStable) {
  const std::vector<MembershipChange> log = {
      {4, MembershipEventKind::kEvict, 7},
      {9, MembershipEventKind::kReadmit, 7},
      {12, MembershipEventKind::kExpel, 2},
  };
  EXPECT_EQ(format_membership_log(log),
            "i=4 evict proc=7\ni=9 readmit proc=7\ni=12 expel proc=2\n");
}

TEST(FaultSim, EvictionScheduleIdenticalWithAndWithoutDeaths) {
  // Evictions draw from their own substream, so adding deaths must not
  // shift which procs get evicted (only the rejection filter changes).
  FaultSpec just_evict;
  just_evict.evictions = 2;
  just_evict.evict_after = 4;
  const FaultPlan a = FaultPlan::make(31, 32, 60, just_evict);

  FaultSpec with_stragglers = just_evict;
  with_stragglers.straggler_prob = 0.2;
  with_stragglers.straggler_mean_us = 500.0;
  const FaultPlan b = FaultPlan::make(31, 32, 60, with_stragglers);

  ASSERT_EQ(a.evictions().size(), b.evictions().size());
  for (std::size_t i = 0; i < a.evictions().size(); ++i) {
    EXPECT_EQ(a.evictions()[i].proc, b.evictions()[i].proc);
    EXPECT_EQ(a.evictions()[i].iteration, b.evictions()[i].iteration);
  }
}

TEST(FaultSim, ValidatesEvictionSchedules) {
  FaultSpec dup;
  dup.explicit_evictions = {{3, 10, {}}, {3, 20, {}}};
  EXPECT_THROW(FaultPlan::make(1, 8, 50, dup), std::invalid_argument);

  FaultSpec range;
  range.explicit_evictions = {{8, 10, {}}};
  EXPECT_THROW(FaultPlan::make(1, 8, 50, range), std::invalid_argument);

  FaultSpec late;
  late.explicit_evictions = {{3, 50, {}}};
  EXPECT_THROW(FaultPlan::make(1, 8, 50, late), std::invalid_argument);

  FaultSpec readmit_before;
  readmit_before.explicit_evictions = {{3, 10, std::size_t{10}}};
  EXPECT_THROW(FaultPlan::make(1, 8, 50, readmit_before),
               std::invalid_argument);

  // deaths + evictions must leave at least one untouched survivor.
  FaultSpec wipeout;
  wipeout.deaths = 4;
  wipeout.evictions = 4;
  EXPECT_THROW(FaultPlan::make(1, 8, 50, wipeout), std::invalid_argument);
}

TEST(FaultSim, ValidatesInputs) {
  const FaultPlan plan = FaultPlan::make(1, 8, 50, FaultSpec{});
  SystemicGenerator wrong(4, 1000.0, 100.0, 10.0, 1);
  EXPECT_THROW(run_faulty_sim(wrong, plan, dynamic_tree(2, 50)),
               std::invalid_argument);
  SystemicGenerator gen(8, 1000.0, 100.0, 10.0, 1);
  EXPECT_THROW(run_faulty_sim(gen, plan, dynamic_tree(2, 51)),
               std::invalid_argument);
}

TEST(FaultSim, MembershipLogsIdenticalAcrossWorkerCounts) {
  // The differential determinism property for eviction schedules: the
  // formatted membership event log of every sweep cell is *byte*
  // identical whether the sweep runs inline or sharded over 2 or 4
  // workers.
  FaultSweepOptions opts;
  opts.procs = 32;
  opts.iterations = 60;
  opts.deaths = 1;
  opts.evictions = 2;
  opts.readmit_delay = 8;
  opts.seed = 99;
  const std::vector<double> probs = {0.0, 0.05, 0.1, 0.2};

  auto logs_with = [&](std::size_t threads) {
    exec::Executor ex;
    ex.threads = threads;
    std::vector<std::string> logs;
    for (const FaultSweepCell& cell : run_fault_sweep(opts, probs, ex))
      logs.push_back(format_membership_log(cell.result.membership_log));
    return logs;
  };

  const std::vector<std::string> serial = logs_with(1);
  // The schedules must actually exercise membership churn, else the
  // property is vacuous.
  bool any = false;
  for (const std::string& log : serial) any = any || !log.empty();
  EXPECT_TRUE(any);
  EXPECT_EQ(serial, logs_with(2));
  EXPECT_EQ(serial, logs_with(4));
}

}  // namespace
}  // namespace imbar::robust
