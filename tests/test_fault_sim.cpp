// Fault-injected simulation: determinism and death semantics of the
// event-driven fault path (the Figure-8-style sweep under faults).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <stdexcept>

#include "dist/samplers.hpp"
#include "robust/fault_plan.hpp"
#include "robust/fault_sim.hpp"
#include "simbarrier/episode.hpp"
#include "workload/arrival.hpp"

namespace imbar::robust {
namespace {

FaultSimOptions dynamic_tree(std::size_t degree, std::size_t iterations) {
  FaultSimOptions o;
  o.degree = degree;
  o.tree = simb::TreeKind::kMcs;
  o.sim.placement = simb::Placement::kDynamic;
  o.iterations = iterations;
  return o;
}

TEST(FaultSim, DeterministicForFixedSeeds) {
  FaultSpec spec;
  spec.straggler_prob = 0.05;
  spec.straggler_mean_us = 500.0;
  spec.lost_wakeup_prob = 0.05;
  spec.lost_wakeup_mean_us = 200.0;
  spec.deaths = 2;
  spec.death_after = 10;
  const FaultPlan plan = FaultPlan::make(7, 32, 120, spec);

  auto run = [&] {
    SystemicGenerator gen(32, 2000.0, 250.0, 50.0, 11);
    return run_faulty_sim(gen, plan, dynamic_tree(4, 120));
  };
  const FaultSimResult a = run();
  const FaultSimResult b = run();

  EXPECT_EQ(a.completed_iterations, b.completed_iterations);
  EXPECT_EQ(a.broken_episodes, b.broken_episodes);
  EXPECT_EQ(a.total_comms, b.total_comms);
  EXPECT_EQ(a.total_swaps, b.total_swaps);
  ASSERT_EQ(a.sync_delays.size(), b.sync_delays.size());
  for (std::size_t i = 0; i < a.sync_delays.size(); ++i)
    EXPECT_DOUBLE_EQ(a.sync_delays[i], b.sync_delays[i]);
}

TEST(FaultSim, DeathsAbortEpisodesAndShrinkTheCohort) {
  FaultSpec spec;
  spec.deaths = 3;
  spec.death_after = 5;
  const FaultPlan plan = FaultPlan::make(13, 16, 80, spec);

  SystemicGenerator gen(16, 2000.0, 200.0, 50.0, 3);
  const FaultSimResult r = run_faulty_sim(gen, plan, dynamic_tree(4, 80));

  EXPECT_EQ(r.survivors, 13u);
  // Deaths on distinct iterations each cost one episode; coinciding
  // deaths share one. Either way every episode is accounted for.
  EXPECT_GE(r.broken_episodes, 1u);
  EXPECT_LE(r.broken_episodes, 3u);
  EXPECT_EQ(r.completed_iterations + r.broken_episodes, 80u);
  EXPECT_GE(r.rebuilds, r.broken_episodes);  // one rebuild per broken episode
  EXPECT_GT(r.mean_sync_delay, 0.0);
}

TEST(FaultSim, NoFaultsMatchesPlainEpisodeLoop) {
  // An empty plan must leave the simulation byte-identical to the
  // unfaulted closed loop with zero slack.
  const FaultPlan plan = FaultPlan::make(1, 8, 60, FaultSpec{});
  SystemicGenerator gen_a(8, 1000.0, 150.0, 25.0, 5);
  const FaultSimResult faulted =
      run_faulty_sim(gen_a, plan, dynamic_tree(2, 60));

  SystemicGenerator gen_b(8, 1000.0, 150.0, 25.0, 5);
  simb::TreeBarrierSim sim(simb::Topology::mcs(8, 2), [] {
    simb::SimOptions o;
    o.placement = simb::Placement::kDynamic;
    return o;
  }());
  simb::EpisodeOptions eo;
  eo.iterations = 60;
  eo.warmup = 1;
  eo.slack = 0.0;
  const simb::EpisodeMetrics plain = simb::run_episode(sim, gen_b, eo);

  ASSERT_EQ(faulted.sync_delays.size(), 60u);
  // run_episode reports post-warmup iterations only; compare the tail.
  ASSERT_EQ(plain.sync_delays.size(), 59u);
  for (std::size_t i = 0; i < plain.sync_delays.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.sync_delays[i], faulted.sync_delays[i + 1]);
}

TEST(FaultSim, PerturberHookShiftsArrivals) {
  // The episode-layer injection point: delaying one processor's arrival
  // by a constant must never reduce any sync delay sample vs. unfaulted
  // ... it changes the last arrival, so just check the hook ran and the
  // runs stay deterministic.
  SystemicGenerator gen(8, 1000.0, 150.0, 25.0, 5);
  simb::TreeBarrierSim sim(simb::Topology::mcs(8, 2), simb::SimOptions{});
  simb::EpisodeOptions eo;
  eo.iterations = 40;
  eo.warmup = 5;
  std::size_t calls = 0;
  const simb::EpisodeMetrics m = simb::run_episode(
      sim, gen, eo, [&](std::size_t, std::span<double> signals) {
        ++calls;
        signals[0] += 500.0;  // proc 0 always arrives late
      });
  EXPECT_EQ(calls, 40u);
  EXPECT_GT(m.mean_sync_delay, 0.0);
}

TEST(FaultSim, ValidatesInputs) {
  const FaultPlan plan = FaultPlan::make(1, 8, 50, FaultSpec{});
  SystemicGenerator wrong(4, 1000.0, 100.0, 10.0, 1);
  EXPECT_THROW(run_faulty_sim(wrong, plan, dynamic_tree(2, 50)),
               std::invalid_argument);
  SystemicGenerator gen(8, 1000.0, 100.0, 10.0, 1);
  EXPECT_THROW(run_faulty_sim(gen, plan, dynamic_tree(2, 51)),
               std::invalid_argument);
}

}  // namespace
}  // namespace imbar::robust
