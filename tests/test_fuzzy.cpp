// Fuzzy-barrier timeline: the slack carry-over mechanism of Section 5.
#include <gtest/gtest.h>

#include <vector>

#include "stats/rank.hpp"
#include "workload/arrival.hpp"
#include "workload/fuzzy.hpp"

namespace imbar {
namespace {

TEST(FuzzyTimeline, Validation) {
  EXPECT_THROW(FuzzyTimeline(0, 1.0), std::invalid_argument);
  EXPECT_THROW(FuzzyTimeline(4, -1.0), std::invalid_argument);
  FuzzyTimeline tl(4, 0.0);
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(tl.signals(wrong), std::invalid_argument);
}

TEST(FuzzyTimeline, FirstIterationStartsAtZero) {
  FuzzyTimeline tl(3, 5.0);
  std::vector<double> work{1.0, 2.0, 3.0};
  const auto sig = tl.signals(work);
  EXPECT_DOUBLE_EQ(sig[0], 1.0);
  EXPECT_DOUBLE_EQ(sig[1], 2.0);
  EXPECT_DOUBLE_EQ(sig[2], 3.0);
}

TEST(FuzzyTimeline, ZeroSlackResynchronizesEveryone) {
  FuzzyTimeline tl(3, 0.0);
  std::vector<double> work{1.0, 5.0, 9.0};
  tl.signals(work);
  tl.advance(10.0);  // release >= last signal
  for (double s : tl.starts()) EXPECT_DOUBLE_EQ(s, 10.0);
}

TEST(FuzzyTimeline, LargeSlackPreservesLateness) {
  FuzzyTimeline tl(3, 100.0);
  std::vector<double> work{1.0, 5.0, 9.0};
  tl.signals(work);
  tl.advance(9.5);
  // signal + slack dominates the release for everyone.
  EXPECT_DOUBLE_EQ(tl.starts()[0], 101.0);
  EXPECT_DOUBLE_EQ(tl.starts()[1], 105.0);
  EXPECT_DOUBLE_EQ(tl.starts()[2], 109.0);
}

TEST(FuzzyTimeline, MixedRegime) {
  // Slack covers the early processor but not the late one.
  FuzzyTimeline tl(2, 3.0);
  std::vector<double> work{1.0, 10.0};
  tl.signals(work);
  tl.advance(10.5);
  EXPECT_DOUBLE_EQ(tl.starts()[0], 10.5);  // 1 + 3 < 10.5: resynced
  EXPECT_DOUBLE_EQ(tl.starts()[1], 13.0);  // 10 + 3 > 10.5: stays late
}

TEST(FuzzyTimeline, SignalsAccumulateAcrossIterations) {
  FuzzyTimeline tl(2, 0.0);
  std::vector<double> work{2.0, 4.0};
  tl.signals(work);
  tl.advance(4.0);
  const auto sig = tl.signals(work);
  EXPECT_DOUBLE_EQ(sig[0], 6.0);
  EXPECT_DOUBLE_EQ(sig[1], 8.0);
}

// The paper's Figure 5 claim, reproduced as a property: with iid noise,
// arrival *order* is unpredictable at slack 0 and strongly persistent
// once slack exceeds the spread of the distribution.
TEST(FuzzyTimeline, SlackInducesArrivalOrderPersistence) {
  auto run = [](double slack) {
    IidGenerator gen(64, make_normal(1000.0, 25.0), 31);
    FuzzyTimeline tl(64, slack);
    std::vector<double> work(64);
    std::vector<std::vector<double>> signal_rows;
    for (std::size_t i = 0; i < 120; ++i) {
      gen.generate(i, work);
      const auto sig = tl.signals(work);
      signal_rows.emplace_back(sig.begin(), sig.end());
      double release = 0.0;
      for (double s : sig) release = std::max(release, s);
      tl.advance(release + 1.0);  // small sync cost
    }
    return rank_autocorrelation(signal_rows, 1);
  };
  EXPECT_NEAR(run(0.0), 0.0, 0.15);
  EXPECT_GT(run(500.0), 0.6);
}

TEST(FuzzyTimeline, AccessorsReflectState) {
  FuzzyTimeline tl(2, 7.5);
  EXPECT_EQ(tl.procs(), 2u);
  EXPECT_DOUBLE_EQ(tl.slack(), 7.5);
  std::vector<double> work{1.0, 2.0};
  tl.signals(work);
  EXPECT_DOUBLE_EQ(tl.last_signals()[1], 2.0);
}

}  // namespace
}  // namespace imbar
