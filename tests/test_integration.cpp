// Cross-module integration: analytic model vs simulator vs real
// threads, and end-to-end recommendation flows.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "barrier/mcs_tree_barrier.hpp"
#include "core/facade.hpp"
#include "model/analytic.hpp"
#include "simbarrier/episode.hpp"
#include "simbarrier/sweep.hpp"
#include "workload/sor_model.hpp"

#include "barrier_test_support.hpp"

namespace imbar {
namespace {

using test::run_threads;

TEST(Integration, AnalyticTracksSimulationAtModerateImbalance) {
  // Paper Section 3 closes with "this approximation still captures the
  // behavior of synchronization under workload imbalance": the analytic
  // and simulated delays must agree within a small factor across the
  // full-tree degrees, and must agree on the broad ranking.
  const std::size_t p = 256;
  const double sigma = 12.5 * 20.0, t_c = 20.0;
  simb::SweepOptions o;
  o.sigma = sigma;
  o.t_c = t_c;
  o.trials = 25;
  for (std::size_t d : {2u, 4u, 16u}) {
    const double sim = simb::simulate_delay(p, d, o).mean_delay;
    const double model = analytic_sync_delay({p, d, sigma, t_c}).sync_delay;
    EXPECT_GT(model, 0.3 * sim) << d;
    EXPECT_LT(model, 3.0 * sim) << d;
  }
}

TEST(Integration, EstimatedDegreePerformsNearSimulatedOptimum) {
  // The paper's 7% claim, loosened for our trial counts: the analytic
  // degree's simulated delay must be within 40% of the exhaustive
  // simulated optimum across the sigma grid.
  const std::size_t p = 256;
  const double t_c = 20.0;
  for (double sigma_tc : {0.0, 6.25, 25.0, 100.0}) {
    simb::SweepOptions o;
    o.sigma = sigma_tc * t_c;
    o.t_c = t_c;
    o.trials = 25;
    const auto sim_opt = simb::find_optimal_degree(p, o);
    const auto est = estimate_optimal_degree(p, o.sigma, t_c);
    const double est_delay = simb::simulate_delay(p, est.degree, o).mean_delay;
    EXPECT_LE(est_delay, sim_opt.best_delay * 1.4)
        << "sigma = " << sigma_tc << " t_c (est degree " << est.degree
        << ", sim best " << sim_opt.best_degree << ")";
  }
}

TEST(Integration, ThreadedMcsCommsMatchSimulatedComms) {
  // Structural equivalence of the real barrier and its simulation: the
  // per-episode communication count is a topology invariant
  // (p + counters - 1), so both worlds must report identical totals.
  const std::size_t p = 6, degree = 2, episodes = 50;
  McsTreeBarrier real(p, degree);
  run_threads(p, [&](std::size_t t) {
    for (std::size_t i = 0; i < episodes; ++i) real.arrive_and_wait(t);
  });

  simb::TreeBarrierSim sim(simb::Topology::mcs(p, degree), simb::SimOptions{});
  std::uint64_t sim_updates = 0;
  double base = 0.0;
  for (std::size_t i = 0; i < episodes; ++i) {
    const auto r = sim.run_iteration(std::vector<double>(p, base));
    sim_updates += r.updates;
    base = r.release + 1.0;
  }
  EXPECT_EQ(real.counters().updates, sim_updates);
}

TEST(Integration, SorModelDrivesOptimalDegreeUpward) {
  // Figure 12 end-to-end shape: larger d_y -> larger sigma -> larger
  // optimal degree on the KSR1-like 56-processor ring topology.
  auto best_for_dy = [](std::size_t dy) {
    SorModelParams sp;
    sp.dy = dy;
    simb::SweepOptions o;
    o.sigma = sor_predicted_sigma_us(sp);
    o.t_c = 20.0;
    o.trials = 25;
    return simb::find_optimal_degree(56, o).best_degree;
  };
  const std::size_t lo = best_for_dy(60);
  const std::size_t hi = best_for_dy(840);
  EXPECT_LE(lo, 8u);
  EXPECT_GE(hi, lo);
  EXPECT_GE(hi, 8u);
}

TEST(Integration, RecommendedConfigSynchronizesRealThreads) {
  const auto cfg = recommend_config(5, /*sigma_us=*/100.0, /*tc_us=*/1.0,
                                    /*predictable=*/true);
  auto barrier = make_barrier(cfg);
  run_threads(5, [&](std::size_t t) {
    for (int i = 0; i < 100; ++i) barrier->arrive_and_wait(t);
  });
  EXPECT_EQ(barrier->counters().episodes, 100u);
}

TEST(Integration, DynamicPlacementBeatsStaticUnderSlackAcrossDegrees) {
  // Figure 8's qualitative content as a property over degrees.
  for (std::size_t degree : {4u, 16u}) {
    const simb::Topology topo = simb::Topology::mcs(512, degree);
    IidGenerator gen(512, make_normal(10000.0, 250.0), 51);
    simb::EpisodeOptions eo;
    eo.iterations = 50;
    eo.warmup = 15;
    eo.slack = 4000.0;
    const auto cmp = simb::compare_placement(topo, simb::SimOptions{}, gen, eo);
    EXPECT_GT(cmp.sync_speedup, 1.2) << "degree " << degree;
    // Deeper (smaller-degree) trees gain more (paper: 4.71 vs 2.45).
    if (degree == 4) {
      EXPECT_GT(cmp.sync_speedup, 1.5);
    }
  }
}

}  // namespace
}  // namespace imbar
