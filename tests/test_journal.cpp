// Durability primitives under deterministic storage lies: frame
// round-trips, torn tails, partial flushes, short reads, bit rot,
// generation framing, and the snapshot codec. Every corruption class
// must be *detected and truncated* at open — never silently replayed.
// Runs under `ctest -L recovery`.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/journal.hpp"
#include "service/snapshot.hpp"
#include "service/storage.hpp"
#include "util/checksum.hpp"

namespace imbar::service {
namespace {

JournalRecord arrive_rec(std::uint64_t seq, std::uint64_t group,
                         std::uint32_t member) {
  JournalRecord r;
  r.type = JournalRecord::Type::kArrive;
  r.seq = seq;
  r.group = group;
  r.member = member;
  r.t_ns = 1000 + seq;
  return r;
}

JournalRecord create_rec(std::uint64_t seq, std::uint64_t group) {
  JournalRecord r;
  r.type = JournalRecord::Type::kCreate;
  r.seq = seq;
  r.group = group;
  r.participants = 4;
  r.quorum = 2;
  r.budget_ns = 0;
  r.hysteresis = 1;
  r.group_class = "quorum";
  return r;
}

TEST(ChecksumTest, Crc32KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(JournalTest, RoundTripAllRecordTypes) {
  auto backend = std::make_shared<FaultyMemBackend>();
  {
    Journal j(backend);
    const JournalOpenReport rep = j.open(4);
    EXPECT_EQ(rep.records, 0u);
    EXPECT_EQ(rep.generation, 1u);
    j.append(create_rec(1, 7));
    j.append(arrive_rec(2, 7, 3));
    JournalRecord all;
    all.type = JournalRecord::Type::kArriveAll;
    all.seq = 3;
    all.group = 7;
    all.t_ns = 42;
    j.append(all);
    JournalRecord poll;
    poll.type = JournalRecord::Type::kPoll;
    poll.seq = 4;
    poll.group = 2;  // shard index for polls
    poll.t_ns = 43;
    j.append(poll);
    JournalRecord destroy;
    destroy.type = JournalRecord::Type::kDestroy;
    destroy.seq = 5;
    destroy.group = 7;
    j.append(destroy);
    j.flush();
  }
  Journal j2(backend);
  const JournalOpenReport rep = j2.open(4);
  EXPECT_EQ(rep.records, 5u);
  EXPECT_EQ(rep.generations, 1u);
  EXPECT_EQ(rep.last_seq, 5u);
  EXPECT_EQ(rep.truncated_records, 0u);
  EXPECT_EQ(rep.generation, 2u);
  ASSERT_EQ(j2.records().size(), 5u);
  const JournalRecord& c = j2.records()[0];
  EXPECT_EQ(c.type, JournalRecord::Type::kCreate);
  EXPECT_EQ(c.group, 7u);
  EXPECT_EQ(c.participants, 4u);
  EXPECT_EQ(c.quorum, 2u);
  EXPECT_EQ(c.group_class, "quorum");
  const JournalRecord& a = j2.records()[1];
  EXPECT_EQ(a.type, JournalRecord::Type::kArrive);
  EXPECT_EQ(a.member, 3u);
  EXPECT_EQ(a.t_ns, 1002u);
  EXPECT_EQ(j2.records()[4].type, JournalRecord::Type::kDestroy);
}

TEST(JournalTest, TornTailTruncatedNotReplayed) {
  auto backend = std::make_shared<FaultyMemBackend>();
  {
    Journal j(backend);
    j.open(2);
    j.append(arrive_rec(1, 0, 0));
    j.append(arrive_rec(2, 0, 1));
    j.flush();
    // A final record whose sector write tears mid-frame at the crash:
    // keep only 5 bytes of it.
    backend->append(Journal::encode(arrive_rec(3, 0, 2)));
    backend->faults().torn_tail_keep = 5;
    backend->faults().torn_tail_armed = true;
    backend->crash();
  }
  const std::size_t torn_size = backend->durable_size();
  Journal j2(backend);
  const JournalOpenReport rep = j2.open(2);
  EXPECT_EQ(rep.records, 2u);  // the torn record is gone, prefix intact
  EXPECT_EQ(rep.last_seq, 2u);
  EXPECT_EQ(rep.truncated_records, 1u);
  EXPECT_EQ(rep.truncated_bytes, 5u);
  // open() dropped the 5 torn bytes, then appended its own generation
  // frame on the clean prefix.
  JournalRecord gen;
  gen.type = JournalRecord::Type::kGeneration;
  gen.generation = 2;
  gen.shards = 2;
  EXPECT_EQ(backend->durable_size(),
            torn_size - 5 + Journal::encode(gen).size());
}

TEST(JournalTest, PartialFlushChecksumCaught) {
  auto backend = std::make_shared<FaultyMemBackend>();
  Journal j(backend);
  j.open(2);
  j.append(arrive_rec(1, 0, 0));
  j.flush();
  const std::size_t good = backend->durable_size();
  // The device acknowledges the next flush but persists only part of
  // the record — a lying flush, not a torn append.
  const std::string frame = Journal::encode(arrive_rec(2, 0, 1));
  backend->append(frame);
  backend->faults().partial_flush_keep = frame.size() - 3;
  backend->faults().partial_flush_armed = true;
  backend->flush();
  backend->crash();

  Journal j2(backend);
  const JournalOpenReport rep = j2.open(2);
  EXPECT_EQ(rep.records, 1u);
  EXPECT_EQ(rep.truncated_records, 1u);
  // open() truncated the lying flush's fragment, then appended its own
  // generation frame on the clean prefix.
  JournalRecord gen;
  gen.type = JournalRecord::Type::kGeneration;
  gen.generation = 2;
  gen.shards = 2;
  EXPECT_EQ(backend->durable_size(), good + Journal::encode(gen).size());
}

TEST(JournalTest, BitFlipStopsReplayAtCorruption) {
  auto backend = std::make_shared<FaultyMemBackend>();
  Journal j(backend);
  j.open(2);
  for (std::uint64_t s = 1; s <= 4; ++s) j.append(arrive_rec(s, 0, 0));
  j.flush();
  // Flip one payload bit of the third op record (after the generation
  // frame + two good records).
  const std::size_t gen_size = backend->durable_size() -
                               4 * Journal::encode(arrive_rec(1, 0, 0)).size();
  const std::size_t rec_size = Journal::encode(arrive_rec(1, 0, 0)).size();
  backend->faults().corrupt_at = gen_size + 2 * rec_size + 12;  // payload byte
  backend->faults().corrupt_mask = 0x40;
  backend->faults().corrupt_armed = true;
  backend->crash();

  Journal j2(backend);
  const JournalOpenReport rep = j2.open(2);
  // Replay stops at the flipped record; it and everything after it are
  // truncated, never replayed as garbage.
  EXPECT_EQ(rep.records, 2u);
  EXPECT_EQ(rep.last_seq, 2u);
  EXPECT_EQ(rep.truncated_records, 1u);
  EXPECT_EQ(rep.truncated_bytes, 2 * rec_size);
}

TEST(JournalTest, ShortReadTruncatesTail) {
  auto backend = std::make_shared<FaultyMemBackend>();
  Journal j(backend);
  j.open(2);
  for (std::uint64_t s = 1; s <= 3; ++s) j.append(arrive_rec(s, 0, 0));
  j.flush();
  const std::size_t rec_size = Journal::encode(arrive_rec(1, 0, 0)).size();
  // The device returns fewer bytes than it acknowledged: cut the read
  // mid-way through the final record.
  backend->faults().short_read_limit = backend->durable_size() - rec_size + 2;
  backend->crash();

  Journal j2(backend);
  const JournalOpenReport rep = j2.open(2);
  EXPECT_EQ(rep.records, 2u);
  EXPECT_EQ(rep.truncated_records, 1u);
}

TEST(JournalTest, SequenceRegressionTruncates) {
  // A duplicated tail (backup restored over a longer journal) shows up
  // as a non-monotone seq — not a valid op stream past that point.
  auto backend = std::make_shared<FaultyMemBackend>();
  {
    Journal j(backend);
    j.open(2);
    j.append(arrive_rec(1, 0, 0));
    j.append(arrive_rec(2, 0, 1));
    j.flush();
  }
  backend->append(Journal::encode(arrive_rec(2, 0, 1)));  // replayed frame
  backend->flush();
  Journal j2(backend);
  const JournalOpenReport rep = j2.open(2);
  EXPECT_EQ(rep.records, 2u);
  EXPECT_EQ(rep.truncated_records, 1u);
}

TEST(JournalTest, OpsBeforeGenerationTruncated) {
  auto backend = std::make_shared<FaultyMemBackend>();
  backend->append(Journal::encode(arrive_rec(1, 0, 0)));
  backend->flush();
  Journal j(backend);
  const JournalOpenReport rep = j.open(2);
  EXPECT_EQ(rep.records, 0u);
  EXPECT_EQ(rep.truncated_records, 1u);
}

TEST(JournalTest, ShardCountMismatchThrows) {
  auto backend = std::make_shared<FaultyMemBackend>();
  {
    Journal j(backend);
    j.open(4);
    j.append(arrive_rec(1, 0, 0));
    j.flush();
  }
  Journal j2(backend);
  EXPECT_THROW(j2.open(8), std::runtime_error);
}

TEST(JournalTest, GenerationRegressionThrows) {
  auto backend = std::make_shared<FaultyMemBackend>();
  JournalRecord g1;
  g1.type = JournalRecord::Type::kGeneration;
  g1.generation = 5;
  g1.shards = 2;
  JournalRecord g2 = g1;
  g2.generation = 3;  // goes backwards: structural corruption
  backend->append(Journal::encode(g1));
  backend->append(Journal::encode(g2));
  backend->flush();
  Journal j(backend);
  EXPECT_THROW(j.open(2), std::runtime_error);
}

TEST(JournalTest, GenerationsAdvanceAcrossIncarnations) {
  auto backend = std::make_shared<FaultyMemBackend>();
  for (std::uint64_t i = 1; i <= 3; ++i) {
    Journal j(backend);
    const JournalOpenReport rep = j.open(2);
    EXPECT_EQ(rep.generation, i);
    EXPECT_EQ(rep.generations, i - 1);
    j.flush();
  }
}

TEST(JournalTest, OpenTwiceThrows) {
  Journal j(std::make_shared<FaultyMemBackend>());
  j.open(1);
  EXPECT_THROW(j.open(1), std::logic_error);
}

TEST(JournalTest, AppendBeforeOpenThrows) {
  Journal j(std::make_shared<FaultyMemBackend>());
  EXPECT_THROW(j.append(arrive_rec(1, 0, 0)), std::logic_error);
}

TEST(FileBackendTest, PersistsAcrossInstances) {
  const std::string path = ::testing::TempDir() + "imbar_journal_test.bin";
  std::remove(path.c_str());
  {
    Journal j(std::make_shared<FileBackend>(path));
    j.open(2);
    j.append(arrive_rec(1, 9, 0));
    j.flush();
  }
  Journal j2(std::make_shared<FileBackend>(path));
  const JournalOpenReport rep = j2.open(2);
  EXPECT_EQ(rep.records, 1u);
  EXPECT_EQ(j2.records()[0].group, 9u);
  std::remove(path.c_str());
}

ShardSnapshot sample_snapshot() {
  ShardSnapshot s;
  s.shard = 1;
  s.last_seq = 99;
  s.epoch_counter = 12;
  s.counters.arrivals = 40;
  s.counters.releases_quorum = 3;
  s.counters.owed_outstanding = 6;
  ClassSnapshot cls;
  cls.name = "quorum";
  cls.groups = 2;
  cls.participants = 8;
  s.classes.push_back(cls);
  GroupSnapshot g;
  g.id = 5;
  g.epoch = 3;
  g.phase = 7;
  g.participants = 4;
  g.group_class = "quorum";
  g.quorum = 2;
  g.budget_ns = 0;
  g.residency = 2;  // Active
  g.owed = {0, 0, 3, 3};
  g.owed_total = 6;
  g.applied.push_back({1, 123456});
  g.backlog.push_back({2, 123999});
  s.groups.push_back(g);
  s.ready = {9, 13};
  s.idle = {17};
  return s;
}

TEST(SnapshotCodecTest, RoundTrip) {
  const ShardSnapshot s = sample_snapshot();
  const std::string blob = encode_shard_snapshot(s);
  ShardSnapshot out;
  ASSERT_TRUE(decode_shard_snapshot(blob, out));
  EXPECT_EQ(out.shard, 1u);
  EXPECT_EQ(out.last_seq, 99u);
  EXPECT_EQ(out.epoch_counter, 12u);
  EXPECT_EQ(out.counters.arrivals, 40u);
  EXPECT_EQ(out.counters.owed_outstanding, 6u);
  ASSERT_EQ(out.classes.size(), 1u);
  EXPECT_EQ(out.classes[0].name, "quorum");
  ASSERT_EQ(out.groups.size(), 1u);
  EXPECT_EQ(out.groups[0].id, 5u);
  EXPECT_EQ(out.groups[0].phase, 7u);
  EXPECT_EQ(out.groups[0].owed, (std::vector<std::uint32_t>{0, 0, 3, 3}));
  ASSERT_EQ(out.groups[0].applied.size(), 1u);
  EXPECT_EQ(out.groups[0].applied[0].member, 1u);
  EXPECT_EQ(out.groups[0].applied[0].submit_ns, 123456u);
  ASSERT_EQ(out.groups[0].backlog.size(), 1u);
  EXPECT_EQ(out.ready, (std::vector<GroupId>{9, 13}));
  EXPECT_EQ(out.idle, (std::vector<GroupId>{17}));
}

TEST(SnapshotCodecTest, EveryByteFlipIsDetectedOrEquivalent) {
  // Flip each byte of the frame in turn: decode must either fail (CRC
  // or structure) — it must never crash or silently accept a frame
  // whose payload bytes changed.
  const std::string blob = encode_shard_snapshot(sample_snapshot());
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    ShardSnapshot out;
    EXPECT_FALSE(decode_shard_snapshot(bad, out)) << "byte " << i;
  }
}

TEST(SnapshotCodecTest, TruncationAndTrailingBytesRejected) {
  const std::string blob = encode_shard_snapshot(sample_snapshot());
  ShardSnapshot out;
  for (std::size_t keep : {std::size_t(0), std::size_t(4), blob.size() - 1})
    EXPECT_FALSE(decode_shard_snapshot(blob.substr(0, keep), out));
  EXPECT_FALSE(decode_shard_snapshot(blob + "x", out));
}

TEST(SnapshotStoreTest, MemAndFileStoresRoundTrip) {
  MemSnapshotStore mem;
  EXPECT_TRUE(mem.load(3).empty());
  mem.save(3, "abc");
  EXPECT_EQ(mem.load(3), "abc");
  mem.save(3, "def");
  EXPECT_EQ(mem.load(3), "def");
  mem.blob(3)[0] = 'X';
  EXPECT_EQ(mem.load(3), "Xef");

  const std::string prefix = ::testing::TempDir() + "imbar_snap_test";
  FileSnapshotStore fs(prefix);
  EXPECT_TRUE(fs.load(0).empty());
  fs.save(0, "hello");
  EXPECT_EQ(fs.load(0), "hello");
  fs.save(0, "hi");  // overwritten whole, not appended
  EXPECT_EQ(fs.load(0), "hi");
  std::remove(fs.path_for(0).c_str());
}

}  // namespace
}  // namespace imbar::service
