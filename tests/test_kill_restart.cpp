// The headline crash-consistency differential: a journaled
// BarrierService killed and recovered at seeded points produces a
// merged CompletionLog byte-identical to a never-crashed run, at exec
// worker counts 1, 2, and 4, with zero duplicated and zero lost
// completions — including quorum groups whose owed-straggler ledgers
// are non-empty at the crash. Runs under `ctest -L recovery`.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "robust/kill_restart.hpp"

namespace imbar::robust {
namespace {

TEST(KillRestartTest, SpecValidation) {
  KillRestartSpec s;
  s.groups = 0;
  EXPECT_THROW(KillRestartCampaign(1, s), std::invalid_argument);
  s = KillRestartSpec{};
  s.participants = 1;
  EXPECT_THROW(KillRestartCampaign(1, s), std::invalid_argument);
  s = KillRestartSpec{};
  s.participants = 2;  // quorum groups need 3
  EXPECT_THROW(KillRestartCampaign(1, s), std::invalid_argument);
  s = KillRestartSpec{};
  s.quorum_every = 0;
  s.participants = 2;  // fine without quorum groups
  EXPECT_NO_THROW(KillRestartCampaign(1, s));
  s = KillRestartSpec{};
  s.worker_counts.clear();
  EXPECT_THROW(KillRestartCampaign(1, s), std::invalid_argument);
}

TEST(KillRestartTest, CrashPointsAreSeededAndDistinct) {
  KillRestartSpec s;
  s.crashes = 3;
  const KillRestartCampaign c(42, s);
  EXPECT_EQ(c.num_steps(), 1u + 2 * s.rounds + 1 + 1);
  const std::vector<std::size_t> a = c.crash_points(0);
  EXPECT_EQ(a, c.crash_points(0));  // pure function of (seed, spec, leg)
  EXPECT_EQ(a.size(), 3u);
  const std::set<std::size_t> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), a.size());
  for (std::size_t p : a) {
    EXPECT_GE(p, 1u);
    EXPECT_LT(p, c.num_steps());
  }
  const KillRestartCampaign c2(43, s);
  // Different seeds draw different schedules (for this pair; seeded).
  EXPECT_NE(c2.crash_points(0), a);
}

TEST(KillRestartTest, SmallCampaignPassesAndRecovers) {
  KillRestartSpec s;
  s.groups = 48;
  s.participants = 4;
  s.rounds = 3;
  s.quorum_every = 3;
  s.shards = 4;
  s.slots = 16;
  s.crashes = 3;
  s.worker_counts = {1, 2};
  const KillRestartCampaign campaign(7, s);
  const KillRestartResult r = campaign.run();
  EXPECT_TRUE(r.passed) << r.detail;
  EXPECT_GT(r.reference_deliveries, 0u);
  ASSERT_EQ(r.runs.size(), 2u);
  for (const KillRestartRunResult& run : r.runs) {
    EXPECT_TRUE(run.log_identical);
    EXPECT_EQ(run.recoveries, 3u);
    EXPECT_GT(run.replayed_ops, 0u);
    EXPECT_EQ(run.duplicates, 0u);
    EXPECT_EQ(run.deliveries, r.reference_deliveries);
    EXPECT_EQ(run.journal_generation, 4u);  // initial + one per crash
    EXPECT_EQ(run.counters.owed_outstanding, 0u);
  }
}

TEST(KillRestartTest, SnapshotsDoNotPerturbTheDifferential) {
  KillRestartSpec s;
  s.groups = 32;
  s.participants = 3;
  s.rounds = 2;
  s.quorum_every = 4;
  s.shards = 2;
  s.slots = 8;
  s.crashes = 2;
  s.snapshot_interval = 16;
  s.worker_counts = {2};
  const KillRestartResult r = KillRestartCampaign(11, s).run();
  EXPECT_TRUE(r.passed) << r.detail;
  ASSERT_EQ(r.runs.size(), 1u);
  EXPECT_GT(r.runs[0].snapshots_loaded, 0u);
  EXPECT_EQ(r.runs[0].snapshot_fallbacks, 0u);
  // Snapshots short-circuit part of the journal on at least one shard.
  EXPECT_GT(r.runs[0].skipped_ops, 0u);
}

// The acceptance-scale differential: >= 10K groups, workers 1/2/4.
TEST(KillRestartTest, TenThousandGroupsByteIdenticalAcrossWorkers) {
  KillRestartSpec s;
  s.groups = 10000;
  s.participants = 4;
  s.rounds = 2;
  s.quorum_every = 4;  // 2500 quorum groups with owed ledgers at crash
  s.shards = 8;
  s.slots = 128;
  s.crashes = 2;
  s.snapshot_interval = 4096;
  s.worker_counts = {1, 2, 4};
  const KillRestartCampaign campaign(2026, s);
  const KillRestartResult r = campaign.run();
  EXPECT_TRUE(r.passed) << r.detail;
  EXPECT_GT(r.log_bytes, 0u);
  ASSERT_EQ(r.runs.size(), 3u);
  for (const KillRestartRunResult& run : r.runs) {
    EXPECT_TRUE(run.log_identical) << "workers=" << run.workers;
    EXPECT_EQ(run.duplicates, 0u);
    EXPECT_EQ(run.deliveries, r.reference_deliveries);
    EXPECT_EQ(run.counters.rejected, 0u);
    EXPECT_EQ(run.counters.owed_outstanding, 0u);
  }
}

}  // namespace
}  // namespace imbar::robust
