// Unit coverage for robust::MembershipGroup: the epoch-fence membership
// runtime (join/leave/evict/quarantine/readmit/expel), its validation
// surface, and the telemetry folds. Multi-kind eviction behaviour under
// real thread cohorts is covered by the conformance matrix
// (check_evict_mid_phase / check_quarantine_readmit); this file pins
// the single-group semantics those properties build on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "barrier/factory.hpp"
#include "obs/episode_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "robust/membership.hpp"
#include "robust/membership_metrics.hpp"

namespace imbar::robust {
namespace {

using namespace std::chrono_literals;

BarrierConfig config_of(BarrierKind kind, std::size_t participants,
                        std::size_t max_participants = 0) {
  BarrierConfig cfg;
  cfg.kind = kind;
  cfg.participants = participants;
  cfg.max_participants = max_participants;
  return cfg;
}

MembershipOptions fast_watchdog(std::chrono::nanoseconds timeout = 100ms) {
  MembershipOptions opts;
  opts.robust.default_timeout = timeout;
  return opts;
}

/// Run `phases` full cohort phases over the group's joined members.
void run_phases(MembershipGroup& group, std::size_t members,
                std::size_t phases) {
  std::vector<std::thread> pool;
  pool.reserve(members);
  for (std::size_t tid = 0; tid < members; ++tid)
    pool.emplace_back([&, tid] {
      for (std::size_t g = 0; g < phases; ++g)
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
    });
  for (auto& t : pool) t.join();
}

TEST(Membership, ConstructionReflectsConfig) {
  const MembershipGroup group(config_of(BarrierKind::kCentral, 4, 8),
                              MembershipOptions{});
  EXPECT_EQ(group.capacity(), 8u);
  EXPECT_EQ(group.active_members(), 4u);
  EXPECT_EQ(group.epoch(), 0u);
  EXPECT_EQ(group.phase(), 0u);
  for (std::size_t tid = 0; tid < 4; ++tid)
    EXPECT_EQ(group.state(tid), MemberState::kJoined);
  for (std::size_t tid = 4; tid < 8; ++tid)
    EXPECT_EQ(group.state(tid), MemberState::kVacant);
  group.check_structure();
}

TEST(Membership, PhasesAdvanceTheLedgerExactlyOnce) {
  MembershipGroup group(config_of(BarrierKind::kSenseReversing, 4), fast_watchdog());
  run_phases(group, 4, 25);
  EXPECT_EQ(group.phase(), 25u);
  EXPECT_EQ(group.epoch(), 0u);  // no membership change, no fence
  EXPECT_EQ(group.stats().fences, 0u);
}

TEST(Membership, JoinGrowsTheCohortAtAnEpochFence) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 2, 4),
                        fast_watchdog());
  const std::size_t tid = group.join();
  EXPECT_EQ(tid, 2u);
  EXPECT_EQ(group.active_members(), 3u);
  EXPECT_EQ(group.state(tid), MemberState::kJoined);
  EXPECT_GE(group.epoch(), 1u);
  EXPECT_EQ(group.stats().joins, 1u);
  group.check_structure();
  run_phases(group, 3, 5);
}

TEST(Membership, JoinBeyondCapacityThrows) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 2, 3),
                        fast_watchdog());
  EXPECT_EQ(group.join(), 2u);
  EXPECT_THROW((void)group.join(), std::invalid_argument);
}

TEST(Membership, LeaveShrinksAndLastMemberCannotLeave) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 3), fast_watchdog());
  group.leave(2);
  EXPECT_EQ(group.state(2), MemberState::kLeft);
  EXPECT_EQ(group.active_members(), 2u);
  EXPECT_THROW(group.leave(2), std::logic_error);  // not a member any more
  group.leave(1);
  EXPECT_THROW(group.leave(0), std::logic_error);  // last member stays
  EXPECT_EQ(group.active_members(), 1u);
  EXPECT_EQ(group.stats().leaves, 2u);
  group.check_structure();
}

TEST(Membership, ArrivalValidatesTid) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 2), fast_watchdog());
  EXPECT_THROW((void)group.arrive_and_wait(2), std::invalid_argument);
  EXPECT_THROW((void)group.arrive_and_wait(99), std::invalid_argument);
}

TEST(Membership, VacantSlotArrivalThrows) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 2, 4),
                        fast_watchdog());
  EXPECT_THROW((void)group.arrive_and_wait(3), std::logic_error);
}

TEST(Membership, FactoryRejectsParticipantsAboveMaxParticipants) {
  EXPECT_THROW(MembershipGroup(config_of(BarrierKind::kCentral, 5, 4),
                               MembershipOptions{}),
               std::invalid_argument);
}

TEST(Membership, WatchdogEvictsAStragglerMidPhase) {
  MembershipGroup group(config_of(BarrierKind::kMcsTree, 4), fast_watchdog());
  run_phases(group, 4, 3);  // warm-up with the full cohort

  // tid 3 stops arriving; the survivors' bounded waits time out and the
  // fence quarantines it.
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < 3; ++tid)
    pool.emplace_back([&, tid] {
      for (std::size_t g = 0; g < 10; ++g)
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
    });
  for (auto& t : pool) t.join();

  EXPECT_EQ(group.state(3), MemberState::kQuarantined);
  EXPECT_EQ(group.active_members(), 3u);
  EXPECT_EQ(group.stats().evictions, 1u);
  group.check_structure();

  // The quarantined member's own arrival reports the eviction.
  EXPECT_EQ(group.arrive_and_wait(3), MemberStatus::kEvicted);

  // The event log carries the eviction with its fence epoch.
  bool saw_evict = false;
  for (const MembershipEvent& e : group.events())
    saw_evict = saw_evict || (e.kind == MembershipEventKind::kEvict &&
                              e.tid == 3);
  EXPECT_TRUE(saw_evict);
}

TEST(Membership, QuarantinedMemberIsReadmittedAtAPhaseBoundary) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 3),
                        fast_watchdog(250ms));
  run_phases(group, 3, 2);

  std::atomic<bool> stop{false};
  std::vector<std::thread> survivors;
  for (std::size_t tid = 0; tid < 2; ++tid)
    survivors.emplace_back([&, tid] {
      while (!stop.load(std::memory_order_acquire))
        ASSERT_NE(group.arrive_and_wait(tid), MemberStatus::kExpelled);
    });

  // Wait out the watchdog, then probe back in.
  while (group.state(2) == MemberState::kJoined ||
         group.state(2) == MemberState::kSuspected)
    std::this_thread::yield();
  ASSERT_EQ(group.state(2), MemberState::kQuarantined);
  EXPECT_EQ(group.await_readmission(2), MemberStatus::kOk);
  EXPECT_EQ(group.state(2), MemberState::kJoined);
  EXPECT_GE(group.stats().readmissions, 1u);

  for (int g = 0; g < 5; ++g) {
    const MemberStatus s = group.arrive_and_wait(2);
    if (s == MemberStatus::kEvicted) {
      // Oversubscription can re-evict a slow re-entrant; probe again.
      ASSERT_EQ(group.await_readmission(2), MemberStatus::kOk);
      continue;
    }
    ASSERT_EQ(s, MemberStatus::kOk);
  }
  stop.store(true, std::memory_order_release);
  try {
    group.leave(2);
  } catch (const std::logic_error&) {
    // Re-evicted at the buzzer: nothing left to leave.
  }
  for (auto& t : survivors) t.join();
  group.check_structure();
}

TEST(Membership, StrikeBudgetExhaustionExpels) {
  // max_evictions = 0: the very first eviction is a permanent expulsion.
  MembershipOptions opts = fast_watchdog();
  opts.max_evictions = 0;
  MembershipGroup group(config_of(BarrierKind::kCentral, 3), opts);

  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < 2; ++tid)
    pool.emplace_back([&, tid] {
      for (std::size_t g = 0; g < 5; ++g)
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
    });
  for (auto& t : pool) t.join();

  EXPECT_EQ(group.state(2), MemberState::kExpelled);
  EXPECT_EQ(group.stats().expulsions, 1u);
  EXPECT_EQ(group.arrive_and_wait(2), MemberStatus::kExpelled);
  EXPECT_EQ(group.await_readmission(2), MemberStatus::kExpelled);
}

TEST(Membership, FailedProbesSelfExpel) {
  // Nobody is phasing, so no fence ever consumes the probe requests;
  // after max_probes expired deadlines the member expels itself.
  MembershipOptions opts = fast_watchdog();
  opts.max_probes = 2;
  opts.probe_timeout = 5ms;
  MembershipGroup group(config_of(BarrierKind::kCentral, 3), opts);

  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < 2; ++tid)
    pool.emplace_back([&, tid] {
      for (std::size_t g = 0; g < 3; ++g)
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
    });
  for (auto& t : pool) t.join();
  ASSERT_EQ(group.state(2), MemberState::kQuarantined);

  EXPECT_EQ(group.await_readmission(2), MemberStatus::kExpelled);
  EXPECT_EQ(group.state(2), MemberState::kExpelled);
  EXPECT_GE(group.stats().expulsions, 1u);
}

TEST(Membership, TreeKindsReparentInsteadOfRebuilding) {
  // McsTree supports detach_quiescent, so a pure-shrink fence splices
  // the tree in place (reparent_ops) rather than rebuilding.
  MembershipGroup group(config_of(BarrierKind::kMcsTree, 6), fast_watchdog());
  run_phases(group, 6, 2);
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < 5; ++tid)
    pool.emplace_back([&, tid] {
      for (std::size_t g = 0; g < 8; ++g)
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
    });
  for (auto& t : pool) t.join();

  EXPECT_EQ(group.state(5), MemberState::kQuarantined);
  EXPECT_GE(group.stats().reparent_ops, 1u);
  group.check_structure();
}

TEST(Membership, CountersSurviveRebuilds) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 3), fast_watchdog());
  run_phases(group, 3, 10);
  group.leave(2);  // forces a roster change
  run_phases(group, 2, 10);
  // Episodes across the rebuild are folded, not lost.
  EXPECT_GE(group.counters().episodes, 20u);
}

TEST(Membership, MetricsFoldPublishesTheSchema) {
  MembershipGroup group(config_of(BarrierKind::kCentral, 3), fast_watchdog());
  run_phases(group, 3, 2);
  group.leave(2);

  obs::MetricsRegistry registry;
  fold_membership_metrics(group, registry);
  EXPECT_EQ(registry.counter("membership.leaves"), 1u);
  EXPECT_EQ(registry.counter("membership.active"), 2u);
  EXPECT_GE(registry.counter("membership.fences"), 1u);
  fold_membership_metrics(group, registry, "g2");
  EXPECT_EQ(registry.counter("g2.leaves"), 1u);
}

TEST(Membership, EvictionsLeaveZeroSpanTraceMarks) {
  MembershipOptions opts = fast_watchdog();
  opts.recorder = std::make_shared<obs::EpisodeRecorder>(4);
  MembershipGroup group(config_of(BarrierKind::kCentral, 4), opts);
  run_phases(group, 4, 2);

  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < 3; ++tid)
    pool.emplace_back([&, tid] {
      for (std::size_t g = 0; g < 5; ++g)
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
    });
  for (auto& t : pool) t.join();
  ASSERT_EQ(group.state(3), MemberState::kQuarantined);

  // The eviction mark is a zero-span record in the victim's lane.
  bool saw_mark = false;
  for (const obs::EpisodeRecord& r : opts.recorder->snapshot(3))
    saw_mark = saw_mark || (r.arrive_ns == r.release_ns);
  EXPECT_TRUE(saw_mark);
}

TEST(Membership, EventNamesRoundTrip) {
  EXPECT_STREQ(to_string(MembershipEventKind::kJoin), "join");
  EXPECT_STREQ(to_string(MembershipEventKind::kLeave), "leave");
  EXPECT_STREQ(to_string(MembershipEventKind::kEvict), "evict");
  EXPECT_STREQ(to_string(MembershipEventKind::kReadmit), "readmit");
  EXPECT_STREQ(to_string(MembershipEventKind::kExpel), "expel");
  EXPECT_STREQ(to_string(MemberState::kJoined), "joined");
  EXPECT_STREQ(to_string(MemberState::kQuarantined), "quarantined");
  EXPECT_STREQ(to_string(MemberStatus::kEvicted), "evicted");
}

}  // namespace
}  // namespace imbar::robust
