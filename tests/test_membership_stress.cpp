// Membership churn soak: every barrier kind under a MembershipGroup
// with repeated watchdog evictions, readmission probes, and graceful
// join/leave churn. Each round a different victim stalls until the
// survivors' watchdog quarantines it, then probes back in; the cohort
// must keep completing phases throughout and end structurally sound
// with a coherent event ledger. Shutdown uses the leave()-drain
// pattern (see check_quarantine_readmit) so nobody waits on a
// departed peer.
//
// Registered under the `stress` ctest label (ctest -L stress).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "robust/membership.hpp"
#include "util/prng.hpp"

namespace imbar::robust {
namespace {

using namespace std::chrono_literals;

struct ChurnCase {
  const char* name;
  BarrierKind kind;
  std::size_t threads;
};

class MembershipChurn : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(MembershipChurn, EvictReadmitChurnKeepsPhasing) {
  const auto& param = GetParam();
  BarrierConfig cfg;
  cfg.kind = param.kind;
  cfg.participants = param.threads;

  MembershipOptions opts;
  opts.robust.default_timeout = 200ms;
  opts.max_evictions = 1000;  // churn freely; expulsion is not the goal
  opts.max_probes = 1000;
  opts.probe_timeout = 10s;
  MembershipGroup group(cfg, opts);

  constexpr std::uint64_t kRounds = 12;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> round{0};

  std::vector<std::thread> pool;
  pool.reserve(param.threads);
  for (std::size_t tid = 0; tid < param.threads; ++tid)
    pool.emplace_back([&, tid] {
      Xoshiro256 rng = Xoshiro256::substream(7, tid);
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t r = round.load(std::memory_order_acquire);
        if (tid == r % param.threads) {
          // This round's victim: stall (simply stop arriving) until the
          // survivors' watchdog quarantines us, probe back in, then
          // hand the round to the next victim. kSuspected is a
          // transient mid-fence mark; spin through it. Re-check stop —
          // a thread that reads the bumped round after the final
          // victim raised stop must drain, not stall unreadmittably.
          while (!stop.load(std::memory_order_acquire) &&
                 (group.state(tid) == MemberState::kJoined ||
                  group.state(tid) == MemberState::kSuspected))
            std::this_thread::yield();
          if (stop.load(std::memory_order_acquire)) break;
          ASSERT_EQ(group.state(tid), MemberState::kQuarantined);
          ASSERT_EQ(group.await_readmission(tid), MemberStatus::kOk);
          if (r + 1 >= kRounds) stop.store(true, std::memory_order_release);
          round.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        const MemberStatus s = group.arrive_and_wait(tid);
        if (s == MemberStatus::kEvicted) {
          // Collateral eviction under oversubscription: probe back in.
          ASSERT_EQ(group.await_readmission(tid), MemberStatus::kOk);
          continue;
        }
        ASSERT_EQ(s, MemberStatus::kOk);
        if ((rng.next() & 0xFF) == 0) std::this_thread::yield();
      }
      // Drain out gracefully so nobody ends up waiting on us.
      try {
        group.leave(tid);
      } catch (const std::logic_error&) {
        // Evicted during the drain, or last member standing.
      }
    });
  for (auto& t : pool) t.join();

  const MembershipStats stats = group.stats();
  EXPECT_GE(stats.evictions, kRounds);
  EXPECT_GE(stats.readmissions, kRounds);
  EXPECT_EQ(stats.expulsions, 0u);
  EXPECT_GE(group.active_members(), 1u);  // last member cannot leave
  // Ledger coherence: a member is only ever readmitted out of an
  // eviction, and never evicted twice without a readmission between
  // (the running evict-readmit difference per tid stays in {0, 1};
  // drain-time evictions may leave a trailing unpaired entry).
  std::vector<int> in_quarantine(param.threads, 0);
  for (const MembershipEvent& e : group.events()) {
    EXPECT_NE(e.kind, MembershipEventKind::kExpel);
    if (e.kind == MembershipEventKind::kEvict) in_quarantine[e.tid]++;
    if (e.kind == MembershipEventKind::kReadmit) in_quarantine[e.tid]--;
    ASSERT_GE(in_quarantine[e.tid], 0);
    ASSERT_LE(in_quarantine[e.tid], 1);
  }
  group.check_structure();
}

TEST_P(MembershipChurn, JoinLeaveChurnUnderLoad) {
  const auto& param = GetParam();
  constexpr int kCycles = 8;
  BarrierConfig cfg;
  cfg.kind = param.kind;
  cfg.participants = param.threads - 1;
  cfg.degree = 2;  // valid for the smallest roster the churn reaches
  // Member ids are stable for the group's lifetime — a departed slot is
  // kLeft, not reusable — so each churn cycle activates a fresh slot.
  cfg.max_participants = param.threads - 1 + kCycles;

  MembershipOptions opts;
  opts.robust.default_timeout = 500ms;
  MembershipGroup group(cfg, opts);

  // A stable core phases continuously while the last slot joins,
  // phases a little, and leaves — fences interleave with live traffic.
  std::atomic<bool> stop{false};
  std::vector<std::thread> core;
  for (std::size_t tid = 0; tid < param.threads - 1; ++tid)
    core.emplace_back([&, tid] {
      while (!stop.load(std::memory_order_acquire))
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
      try {
        group.leave(tid);
      } catch (const std::logic_error&) {
        // Last member standing cannot leave; that is fine.
      }
    });

  std::thread churner([&] {
    for (int cycle = 0; cycle < kCycles; ++cycle) {
      const std::size_t tid = group.join();
      for (int g = 0; g < 5; ++g)
        ASSERT_EQ(group.arrive_and_wait(tid), MemberStatus::kOk);
      group.leave(tid);
    }
    stop.store(true, std::memory_order_release);
  });

  churner.join();
  for (auto& t : core) t.join();

  const MembershipStats stats = group.stats();
  EXPECT_EQ(stats.joins, static_cast<std::uint64_t>(kCycles));
  EXPECT_GE(stats.leaves, static_cast<std::uint64_t>(kCycles));
  EXPECT_EQ(stats.expulsions, 0u);
  group.check_structure();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MembershipChurn,
    ::testing::Values(
        ChurnCase{"central", BarrierKind::kCentral, 4},
        ChurnCase{"combining", BarrierKind::kCombiningTree, 4},
        ChurnCase{"mcs", BarrierKind::kMcsTree, 4},
        ChurnCase{"dynamic", BarrierKind::kDynamicPlacement, 4},
        ChurnCase{"dissemination", BarrierKind::kDissemination, 4},
        ChurnCase{"tournament", BarrierKind::kTournament, 4},
        ChurnCase{"mcs_local", BarrierKind::kMcsLocalSpin, 4},
        ChurnCase{"adaptive", BarrierKind::kAdaptive, 4},
        ChurnCase{"sense", BarrierKind::kSenseReversing, 4}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace imbar::robust
