// Normal distribution machinery: Phi, Phi^-1 (paper Eq. 4 depends on
// inverse accuracy deep into the tails).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dist/normal.hpp"

namespace imbar {
namespace {

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.39894228040143267794, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_DOUBLE_EQ(normal_pdf(3.0), normal_pdf(-3.0));
}

TEST(NormalCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalCdf, TailsAreAccurate) {
  // erfc-based evaluation stays accurate where 1 - Phi underflows.
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450376946e-10, 1e-18);
  EXPECT_GT(normal_cdf(-37.0), 0.0);
}

TEST(NormalCdf, Monotone) {
  double prev = -1.0;
  for (double x = -8.0; x <= 8.0; x += 0.25) {
    const double c = normal_cdf(x);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(NormalInvCdf, KnownQuantiles) {
  EXPECT_NEAR(normal_inv_cdf(0.5), 0.0, 1e-15);
  EXPECT_NEAR(normal_inv_cdf(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(normal_inv_cdf(0.8413447460685429), 1.0, 1e-12);
  EXPECT_NEAR(normal_inv_cdf(0.025), -1.959963984540054, 1e-12);
}

TEST(NormalInvCdf, EdgeCases) {
  EXPECT_EQ(normal_inv_cdf(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_inv_cdf(1.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_inv_cdf(-0.1), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(normal_inv_cdf(std::nan(""))));
}

TEST(NormalInvCdf, Antisymmetric) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(normal_inv_cdf(p), -normal_inv_cdf(1.0 - p), 1e-12);
  }
}

// Round-trip property sweep: Phi(Phi^-1(p)) == p across the full open
// interval, including deep tails.
class InvCdfRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(InvCdfRoundTrip, PhiOfInverseIsIdentity) {
  const double p = GetParam();
  const double x = normal_inv_cdf(p);
  EXPECT_NEAR(normal_cdf(x), p, 1e-12 + p * 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Grid, InvCdfRoundTrip,
                         ::testing::Values(1e-12, 1e-9, 1e-6, 1e-4, 0.001, 0.01,
                                           0.02425, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.97575, 0.99, 0.999, 1 - 1e-6,
                                           1 - 1e-9));

TEST(NormalGeneral, LocationScale) {
  EXPECT_NEAR(normal_cdf(10.0, 10.0, 2.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(12.0, 10.0, 2.0), normal_cdf(1.0), 1e-15);
  EXPECT_NEAR(normal_inv_cdf(0.5, 10.0, 2.0), 10.0, 1e-12);
  EXPECT_NEAR(normal_inv_cdf(0.8413447460685429, 10.0, 2.0), 12.0, 1e-9);
}

TEST(NormalInvCdf, MonotoneOnGrid) {
  double prev = -std::numeric_limits<double>::infinity();
  for (double p = 0.001; p < 1.0; p += 0.001) {
    const double x = normal_inv_cdf(p);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

}  // namespace
}  // namespace imbar
