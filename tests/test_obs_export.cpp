// JSON writer/parser round trips, the exporter schemas (Chrome trace,
// "imbar.metrics.v1", "imbar.bench.v1"), the sim trace sink, and golden
// checks of the committed artifacts (BENCH_micro.json, trace sample).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/episode_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/micro_harness.hpp"
#include "obs/trace_export.hpp"
#include "sim/engine.hpp"
#include "stats/histogram.hpp"
#include "util/stopwatch.hpp"

namespace imbar::obs {
namespace {

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + leaf;
}

TEST(JsonWriter, NestsAndEscapes) {
  JsonWriter w;
  w.begin_object()
      .kv("name", "a\"b\\c\n\t")
      .kv("n", std::uint64_t{42})
      .kv("x", 1.5)
      .kv("flag", true)
      .key("list")
      .begin_array()
      .value(1)
      .value("two")
      .null()
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\\t\",\"n\":42,\"x\":1.5,"
            "\"flag\":true,\"list\":[1,\"two\",null]}");
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::escape(std::string("\x01")), "\\u0001");
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .kv("s", "he\"llo")
      .kv("neg", -2.25)
      .key("arr")
      .begin_array()
      .value(false)
      .value(std::int64_t{-7})
      .end_array()
      .end_object();

  const json::Value v = json::parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->string, "he\"llo");
  EXPECT_DOUBLE_EQ(v.find("neg")->number, -2.25);
  const json::Value* arr = v.find("arr");
  ASSERT_TRUE(arr != nullptr && arr->is_array());
  ASSERT_EQ(arr->array.size(), 2u);
  EXPECT_EQ(arr->array[0].type, json::Type::kBool);
  EXPECT_FALSE(arr->array[0].boolean);
  EXPECT_DOUBLE_EQ(arr->array[1].number, -7.0);
}

TEST(JsonParse, DecodesUnicodeEscapes) {
  const json::Value v = json::parse("\"a\\u0041\\n\"");
  EXPECT_EQ(v.string, "aA\n");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)json::parse("\"abc"), std::runtime_error);
  EXPECT_THROW((void)json::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"k\" 1}"), std::runtime_error);
  EXPECT_THROW((void)json::parse(""), std::runtime_error);
  EXPECT_THROW((void)json::parse_file("/nonexistent/imbar.json"),
               std::runtime_error);
}

TEST(HistogramQuantile, InterpolatesInsideBins) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);  // one-bin resolution
  EXPECT_NEAR(h.quantile(0.0), 0.0, 10.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 10.0);
  EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);

  Histogram empty(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, SnapshotMatchesSchema) {
  MetricsRegistry reg;
  reg.add_counter("a.events");
  reg.add_counter("a.events", 4);
  reg.set_counter("b.total", 17);
  for (int i = 0; i < 100; ++i)
    reg.observe("a.latency_us", static_cast<double>(i), 0.0, 100.0);

  EXPECT_EQ(reg.counter("a.events"), 5u);
  EXPECT_EQ(reg.counter_count(), 2u);
  EXPECT_EQ(reg.histogram_count(), 1u);

  const json::Value v = json::parse(reg.snapshot_json());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("schema")->string, kMetricsSchema);
  EXPECT_DOUBLE_EQ(v.find("counters")->find("a.events")->number, 5.0);
  EXPECT_DOUBLE_EQ(v.find("counters")->find("b.total")->number, 17.0);
  const json::Value* hist = v.find("histograms")->find("a.latency_us");
  ASSERT_TRUE(hist != nullptr);
  for (const char* k :
       {"count", "mean", "stddev", "min", "max", "p50", "p90", "p99"})
    EXPECT_TRUE(hist->has_number(k)) << k;
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 100.0);
  EXPECT_NEAR(hist->find("mean")->number, 49.5, 1e-9);
  EXPECT_NEAR(hist->find("p50")->number, 50.0, 2.0);

  reg.reset();
  EXPECT_EQ(reg.counter_count(), 0u);
  EXPECT_EQ(reg.histogram_count(), 0u);
}

TEST(ChromeTrace, ExportValidatesAndCountsSlices) {
  EpisodeRecorder rec(2);
  rec.record(0, 1000, 2000);
  rec.record(0, 3000, 3500);
  rec.record(1, 1200, 2000);

  const json::Value v = json::parse(chrome_trace_json(rec));
  EXPECT_EQ(validate_chrome_trace(v), 3u);

  // Metadata names the process and both thread tracks.
  const json::Value* events = v.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  EXPECT_EQ(events->array[0].find("name")->string, "process_name");
  EXPECT_EQ(events->array[0].find("args")->find("name")->string,
            kTraceProcessName);
}

TEST(ChromeTrace, ValidatorRejectsStructuralViolations) {
  EXPECT_THROW((void)validate_chrome_trace(json::parse("{}")),
               std::runtime_error);
  EXPECT_THROW((void)validate_chrome_trace(json::parse("[1]")),
               std::runtime_error);
  // An X slice missing its duration.
  const char* no_dur =
      R"({"traceEvents":[{"name":"e","ph":"X","pid":0,"tid":0,"ts":1}]})";
  EXPECT_THROW((void)validate_chrome_trace(json::parse(no_dur)),
               std::runtime_error);
  // Negative duration.
  const char* neg = R"({"traceEvents":[
      {"name":"e","ph":"X","pid":0,"tid":0,"ts":1,"dur":-2}]})";
  EXPECT_THROW((void)validate_chrome_trace(json::parse(neg)),
               std::runtime_error);
  // Out-of-order slices on one track.
  const char* unordered = R"({"traceEvents":[
      {"name":"a","ph":"X","pid":0,"tid":0,"ts":10,"dur":1},
      {"name":"b","ph":"X","pid":0,"tid":0,"ts":5,"dur":1}]})";
  EXPECT_THROW((void)validate_chrome_trace(json::parse(unordered)),
               std::runtime_error);
}

TEST(ChromeTrace, WritesFileAndCsv) {
  EpisodeRecorder rec(1);
  rec.record(0, 1000, 4000);
  rec.record(0, 5000, 9000);

  const std::string tpath = temp_path("imbar_trace.json");
  write_chrome_trace(rec, tpath);
  EXPECT_EQ(validate_chrome_trace(json::parse_file(tpath)), 2u);

  const std::string cpath = temp_path("imbar_episodes.csv");
  EXPECT_EQ(write_episode_csv(rec, cpath), 2u);
  std::ifstream in(cpath);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "tid,episode,arrive_us,release_us,span_us");

  std::remove(tpath.c_str());
  std::remove(cpath.c_str());
}

TEST(RecorderMetrics, FoldsIntoRegistry) {
  EpisodeRecorder rec(2, {.ring_capacity = 2});
  for (std::uint64_t e = 0; e < 5; ++e) {
    rec.record(0, e * 1000, e * 1000 + 500);
    rec.record(1, e * 1000, e * 1000 + 700);
  }
  rec.abort_episode(1);

  MetricsRegistry reg;
  fold_recorder_metrics(rec, reg, "central");
  EXPECT_EQ(reg.counter("central.recorded"), 10u);
  EXPECT_EQ(reg.counter("central.dropped"), 6u);
  EXPECT_EQ(reg.counter("central.aborted"), 1u);
  const json::Value v = json::parse(reg.snapshot_json());
  EXPECT_TRUE(v.find("histograms")->find("central.episode_us") != nullptr);
}

TEST(SimFeed, RecordsIterationsAndValidatesInput) {
  EpisodeRecorder rec(3);
  const std::vector<double> signals = {10.0, 30.0, 20.0};
  record_sim_iteration(rec, signals, 40.0);
  EXPECT_EQ(rec.recorded(0), 1u);
  EXPECT_EQ(rec.snapshot(1)[0].arrive_ns, 30'000u);   // 30 us
  EXPECT_EQ(rec.snapshot(1)[0].release_ns, 40'000u);  // release 40 us

  const std::vector<double> too_many = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(record_sim_iteration(rec, too_many, 10.0),
               std::invalid_argument);
  const std::vector<double> late = {50.0, 1.0, 2.0};  // after release
  EXPECT_THROW(record_sim_iteration(rec, late, 40.0), std::invalid_argument);
}

TEST(SimFeed, EngineTraceSinkFoldsDispatches) {
  MetricsRegistry reg;
  MetricsTraceSink sink(reg, "sim");
  sim::Engine eng;
  eng.set_trace_sink(&sink);
  eng.schedule(10.0, [] {});
  eng.schedule(20.0, [&eng] { eng.schedule_in(5.0, [] {}); });
  eng.run();

  EXPECT_EQ(reg.counter("sim.events"), 3u);
  const json::Value v = json::parse(reg.snapshot_json());
  const json::Value* hist = v.find("histograms")->find("sim.dispatch_t_us");
  ASSERT_TRUE(hist != nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(hist->find("max")->number, 25.0);

  eng.set_trace_sink(nullptr);
  eng.schedule(30.0, [] {});
  eng.run();
  EXPECT_EQ(reg.counter("sim.events"), 3u);  // sink detached
}

TEST(BenchSchema, SerializesAndValidates) {
  PhaseLog log;
  {
    ScopedPhaseTimer t(log, "sweep");
  }
  BenchRow params = {BenchCell::num("procs", 64.0),
                     BenchCell::str("mode", "smoke"),
                     BenchCell::flag("full", true)};
  std::vector<BenchRow> rows;
  rows.push_back({BenchCell::num("degree", 2.0), BenchCell::num("us", 1.5)});
  rows.push_back({BenchCell::num("degree", 4.0), BenchCell::num("us", 1.0)});

  const std::string doc = bench_json("fig_test", params, rows, &log);
  const json::Value v = json::parse(doc);
  EXPECT_EQ(validate_bench_json(v), 2u);
  EXPECT_EQ(v.find("schema")->string, kBenchSchema);
  EXPECT_EQ(v.find("name")->string, "fig_test");
  EXPECT_DOUBLE_EQ(v.find("params")->find("procs")->number, 64.0);
  EXPECT_EQ(v.find("params")->find("mode")->string, "smoke");
  EXPECT_TRUE(v.find("params")->find("full")->boolean);
  EXPECT_EQ(v.find("phases")->array.size(), 1u);
  EXPECT_EQ(v.find("phases")->array[0].find("name")->string, "sweep");
}

TEST(BenchSchema, ValidatorRejectsViolations) {
  EXPECT_THROW((void)validate_bench_json(json::parse("{}")),
               std::runtime_error);
  const char* wrong_schema =
      R"({"schema":"other.v9","name":"x","params":{},"rows":[]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(wrong_schema)),
               std::runtime_error);
  // Rows must stay flat: nested objects are not part of the schema.
  const char* nested = R"({"schema":"imbar.bench.v1","name":"x",
      "params":{},"rows":[{"cell":{"deep":1}}]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(nested)),
               std::runtime_error);
}

TEST(BenchSchema, ValidatorRejectsNonFiniteAndBrokenPhases) {
  // The writer can't emit NaN/Inf (JSON has no literal for them), but a
  // hand-edited or corrupted artifact can smuggle them in via parse() of
  // huge exponents — the validator must refuse rather than let gates and
  // plots silently compare against garbage.
  const char* nan_cell = R"({"schema":"imbar.bench.v1","name":"x",
      "params":{},"rows":[{"mean_us":1e999}]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(nan_cell)),
               std::runtime_error);
  const char* nan_param = R"({"schema":"imbar.bench.v1","name":"x",
      "params":{"procs":-1e999},"rows":[]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(nan_param)),
               std::runtime_error);
  const char* neg_phase = R"({"schema":"imbar.bench.v1","name":"x",
      "params":{},"rows":[],
      "phases":[{"name":"measure","elapsed_s":-0.5}]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(neg_phase)),
               std::runtime_error);
  const char* inf_phase = R"({"schema":"imbar.bench.v1","name":"x",
      "params":{},"rows":[],
      "phases":[{"name":"measure","elapsed_s":1e999}]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(inf_phase)),
               std::runtime_error);
  // Duplicate phase names would make per-phase attribution ambiguous;
  // multi-thread-count runs scope them (e.g. "measure/t2/central").
  const char* dup_phase = R"({"schema":"imbar.bench.v1","name":"x",
      "params":{},"rows":[],
      "phases":[{"name":"measure","elapsed_s":0.1},
                {"name":"measure","elapsed_s":0.2}]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(dup_phase)),
               std::runtime_error);
  // Zero elapsed stays legal: sub-resolution phases really happen.
  const char* ok = R"({"schema":"imbar.bench.v1","name":"x",
      "params":{},"rows":[{"us":1.0}],
      "phases":[{"name":"a","elapsed_s":0.0},{"name":"b","elapsed_s":0.1}]})";
  EXPECT_EQ(validate_bench_json(json::parse(ok)), 1u);
}

TEST(MetricsRegistry, LabeledHistogramFamiliesShareTheSchema) {
  MetricsRegistry reg;
  for (int i = 0; i < 10; ++i) {
    reg.observe_labeled("svc.latency_us", "class=small",
                        static_cast<double>(i), 0.0, 100.0);
    reg.observe_labeled("svc.latency_us", "class=large",
                        static_cast<double>(i) * 2.0, 0.0, 100.0);
  }
  // Labels are sorted; unrelated families don't leak in.
  reg.observe("svc.latency_used", 1.0);  // prefix-collision guard
  EXPECT_EQ(reg.labels("svc.latency_us"),
            (std::vector<std::string>{"class=large", "class=small"}));
  EXPECT_TRUE(reg.labels("svc.other").empty());

  // Members live in the plain "histograms" object — imbar.metrics.v1
  // is unchanged, the label rides in the member key.
  const json::Value v = json::parse(reg.snapshot_json());
  const json::Value* member =
      v.find("histograms")->find("svc.latency_us{class=small}");
  ASSERT_NE(member, nullptr);
  EXPECT_DOUBLE_EQ(member->find("count")->number, 10.0);

  // merge_labeled folds externally aggregated accumulators.
  Histogram h(0.0, 100.0, 64);
  RunningStats rs;
  for (int i = 0; i < 5; ++i) {
    h.add(50.0);
    rs.add(50.0);
  }
  reg.merge_labeled("svc.latency_us", "class=small", h, rs);
  const json::Value v2 = json::parse(reg.snapshot_json());
  EXPECT_DOUBLE_EQ(v2.find("histograms")
                       ->find("svc.latency_us{class=small}")
                       ->find("count")
                       ->number,
                   15.0);

  // Braces in family or label would make the key unparseable.
  EXPECT_THROW(reg.observe_labeled("bad{", "l", 1.0), std::invalid_argument);
  EXPECT_THROW(reg.observe_labeled("f", "l}", 1.0), std::invalid_argument);
  EXPECT_THROW(reg.observe_labeled("", "l", 1.0), std::invalid_argument);
  EXPECT_THROW(reg.merge_labeled("f", "{", h, rs), std::invalid_argument);
}

namespace {

// A minimal well-formed imbar.service.v1 document; tests mutate single
// fields to pin each validator rule.
std::string service_doc(const std::string& service_patch,
                        const std::string& class_patch) {
  std::string doc = R"({"schema":"imbar.service.v1","name":"soak",
      "params":{"groups":2},
      "service":{"groups":2,"logical_participants":6,"shards":1,
                 "slots":4,"workers":2,"arrivals":12,
                 "releases_strict":2,"releases_quorum":1,SPATCH
                 "classes":[{"class":"small","groups":1,"participants":2,
                             "count":4,"mean_us":1.5,"p50_us":1.0,
                             "p90_us":2.0,"p99_us":3.0}CPATCH]},
      "rows":[{"class":"small","p50_us":1.0}]})";
  doc.replace(doc.find("SPATCH"), 6, service_patch);
  doc.replace(doc.find("CPATCH"), 6, class_patch);
  return doc;
}

}  // namespace

TEST(ServiceSchema, ValidatorAcceptsServiceDocument) {
  const json::Value v = json::parse(service_doc("", ""));
  EXPECT_EQ(v.find("schema")->string, kServiceSchema);
  EXPECT_EQ(validate_bench_json(v), 1u);
}

TEST(ServiceSchema, ValidatorRejectsServiceViolations) {
  // A service.v1 schema string without the service section is broken.
  const char* missing = R"({"schema":"imbar.service.v1","name":"x",
      "params":{},"rows":[]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(missing)),
               std::runtime_error);
  // A required total (workers) gone missing.
  std::string noworkers = service_doc("", "");
  noworkers.replace(noworkers.find("\"workers\":2,"), 12, "");
  EXPECT_THROW((void)validate_bench_json(json::parse(noworkers)),
               std::runtime_error);
  // classes must be an array.
  const char* bad_classes = R"({"schema":"imbar.service.v1","name":"x",
      "params":{},
      "service":{"groups":1,"logical_participants":1,"shards":1,"slots":1,
                 "workers":1,"arrivals":1,"releases_strict":1,
                 "releases_quorum":0,"classes":7},
      "rows":[]})";
  EXPECT_THROW((void)validate_bench_json(json::parse(bad_classes)),
               std::runtime_error);
}

TEST(ServiceSchema, ValidatorRejectsNegativeAndNonFiniteNumbers) {
  // Negative group count in the totals.
  std::string neg = service_doc("", "");
  neg.replace(neg.find("\"groups\":2,\"logical_participants\""), 10,
              "\"groups\":-2");
  EXPECT_THROW((void)validate_bench_json(json::parse(neg)),
               std::runtime_error);
  // Non-finite percentile inside a class entry.
  std::string inf = service_doc("", "");
  inf.replace(inf.find("\"p99_us\":3.0"), 12, "\"p99_us\":1e999");
  EXPECT_THROW((void)validate_bench_json(json::parse(inf)),
               std::runtime_error);
  // Negative per-class completion count.
  std::string negc = service_doc("", "");
  negc.replace(negc.find("\"count\":4"), 9, "\"count\":-4");
  EXPECT_THROW((void)validate_bench_json(json::parse(negc)),
               std::runtime_error);
}

TEST(ServiceSchema, ValidatorRejectsBrokenClassEntries) {
  // Duplicate class names make per-class attribution ambiguous.
  const std::string dup = service_doc(
      "", R"(,{"class":"small","groups":1,"participants":4,"count":8,
              "mean_us":2.0,"p50_us":1.0,"p90_us":2.0,"p99_us":3.0})");
  EXPECT_THROW((void)validate_bench_json(json::parse(dup)),
               std::runtime_error);
  // A class entry without its "class" string.
  std::string unnamed = service_doc("", "");
  unnamed.replace(unnamed.find("\"class\":\"small\","), 16, "");
  EXPECT_THROW((void)validate_bench_json(json::parse(unnamed)),
               std::runtime_error);
  // Missing percentile member.
  std::string nop50 = service_doc("", "");
  nop50.replace(nop50.find("\"p50_us\":1.0,"), 13, "");
  EXPECT_THROW((void)validate_bench_json(json::parse(nop50)),
               std::runtime_error);
}

// Golden checks: the committed artifacts must stay loadable and
// schema-clean, so downstream tooling (plot_figures.py, Perfetto) can
// rely on them.
TEST(Golden, CommittedBenchSampleIsValid) {
  const json::Value v = json::parse_file(IMBAR_REPO_ROOT "/BENCH_micro.json");
  // One row per (kind, threads) pair: ten kinds at threads in {2, 4}.
  EXPECT_EQ(validate_bench_json(v), 20u);
  EXPECT_EQ(v.find("name")->string, "micro_real_barriers");
  std::map<double, std::set<std::string>> kinds_at;
  for (const json::Value& row : v.find("rows")->array) {
    ASSERT_TRUE(row.has_string("kind"));
    ASSERT_TRUE(row.has_number("threads"));
    for (const char* k : {"episodes_per_sec", "mean_us", "p50_us", "p99_us",
                          "sigma_us", "sigma_tc", "overlapped", "recorded",
                          "dropped"})
      EXPECT_TRUE(row.has_number(k)) << k;
    kinds_at[row.find("threads")->number].insert(row.find("kind")->string);
  }
  ASSERT_EQ(kinds_at.size(), 2u);
  for (const auto& [threads, kinds] : kinds_at)
    EXPECT_EQ(kinds.size(), 10u) << "threads=" << threads;

  // The committed envelope must record flat as the fastest kind at each
  // thread count — the headline claim the perf gate then defends.
  for (const auto& [threads, kinds] : kinds_at) {
    double flat_mean = 0.0, best_other = 1e300;
    for (const json::Value& row : v.find("rows")->array) {
      if (row.find("threads")->number != threads) continue;
      const double mean = row.find("mean_us")->number;
      if (row.find("kind")->string == "flat")
        flat_mean = mean;
      else
        best_other = std::min(best_other, mean);
    }
    EXPECT_GT(flat_mean, 0.0) << "threads=" << threads;
    EXPECT_LE(flat_mean, best_other) << "threads=" << threads;
  }
}

TEST(Golden, CommittedTraceSampleIsValid) {
  const json::Value v =
      json::parse_file(IMBAR_TEST_DATA_DIR "/trace_sample.json");
  EXPECT_GT(validate_chrome_trace(v), 0u);
}

}  // namespace
}  // namespace imbar::obs
