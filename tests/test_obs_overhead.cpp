// Instrumentation overhead smoke: for every barrier kind, an
// instrumented episode loop must complete, account for every episode,
// and stay within a (deliberately generous) multiple of the plain
// barrier's wall time — the recorder's hot path is two steady_clock
// reads and a ring store, so anything near the bound signals a
// regression like accidental locking or allocation in record().
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "barrier/factory.hpp"
#include "obs/instrumented_barrier.hpp"
#include "util/stopwatch.hpp"

namespace imbar::obs {
namespace {

constexpr std::size_t kThreads = 2;
constexpr std::size_t kEpisodes = 400;

double episode_loop(Barrier& bar) {
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&bar, t] {
      for (std::size_t e = 0; e < kEpisodes; ++e) bar.arrive_and_wait(t);
    });
  for (auto& w : workers) w.join();
  return sw.elapsed_s();
}

class Overhead : public ::testing::TestWithParam<BarrierKind> {};

TEST_P(Overhead, InstrumentedLoopStaysCheap) {
  BarrierConfig cfg;
  cfg.kind = GetParam();
  cfg.participants = kThreads;
  cfg.degree = 2;

  // Plain baseline: best of 3 runs to damp scheduler noise (this host
  // may be a single core, so individual runs jitter hard).
  double plain_s = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    auto plain = make_barrier(cfg);
    plain_s = std::min(plain_s, episode_loop(*plain));
  }

  double inst_s = 1e9;
  auto inst = make_instrumented(cfg);
  for (int rep = 0; rep < 3; ++rep)
    inst_s = std::min(inst_s, episode_loop(*inst));

  // Exact accounting: every episode of every rep recorded, none lost.
  const InstrumentedSnapshot snap = inst->snapshot();
  EXPECT_EQ(snap.recorded, 3 * kThreads * kEpisodes);
  EXPECT_EQ(snap.aborted, 0u);
  EXPECT_EQ(snap.counters.episodes, 3 * kEpisodes);

  // Generous: 20x + 50ms absorbs CI noise while still catching a
  // recorder that starts locking or allocating per episode.
  EXPECT_LT(inst_s, 20.0 * plain_s + 0.05)
      << "plain " << plain_s << " s vs instrumented " << inst_s << " s";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, Overhead, ::testing::ValuesIn(kAllBarrierKinds),
    [](const ::testing::TestParamInfo<BarrierKind>& info) {
      std::string name = to_string(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace imbar::obs
