// EpisodeRecorder ring semantics, ArrivalSpreadEstimator numerics
// (against dist/ ground truth), the fuzzy `overlapped` counter, and the
// instrumented decorator's bookkeeping.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "barrier/factory.hpp"
#include "dist/samplers.hpp"
#include "obs/arrival_spread.hpp"
#include "obs/episode_recorder.hpp"
#include "obs/instrumented_barrier.hpp"
#include "obs/micro_harness.hpp"
#include "stats/summary.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"

namespace imbar::obs {
namespace {

TEST(EpisodeRecorder, RecordsAndSnapshotsInOrder) {
  EpisodeRecorder rec(2, {.ring_capacity = 16});
  rec.record(0, 10, 20);
  rec.record(0, 30, 45);
  rec.record(1, 5, 50);

  EXPECT_EQ(rec.threads(), 2u);
  EXPECT_EQ(rec.recorded(0), 2u);
  EXPECT_EQ(rec.recorded(1), 1u);
  EXPECT_EQ(rec.dropped(0), 0u);

  const auto lane0 = rec.snapshot(0);
  ASSERT_EQ(lane0.size(), 2u);
  EXPECT_EQ(lane0[0].episode, 0u);
  EXPECT_EQ(lane0[0].arrive_ns, 10u);
  EXPECT_EQ(lane0[0].release_ns, 20u);
  EXPECT_EQ(lane0[1].episode, 1u);

  const auto all = rec.snapshot_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].tid, 0u);
  EXPECT_EQ(all[2].tid, 1u);
  EXPECT_EQ(all[2].record.release_ns, 50u);
}

TEST(EpisodeRecorder, RingWrapsAndCountsDrops) {
  constexpr std::size_t kCap = 8;
  EpisodeRecorder rec(1, {.ring_capacity = kCap});
  for (std::uint64_t e = 0; e < 20; ++e) rec.record(0, e * 10, e * 10 + 5);

  EXPECT_EQ(rec.recorded(0), 20u);
  EXPECT_EQ(rec.dropped(0), 20u - kCap);

  // The retained window is the newest kCap episodes, oldest first.
  const auto snap = rec.snapshot(0);
  ASSERT_EQ(snap.size(), kCap);
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(snap[i].episode, 20 - kCap + i);
    EXPECT_EQ(snap[i].arrive_ns, snap[i].episode * 10);
  }
}

TEST(EpisodeRecorder, BeginEndStampsMonotonically) {
  EpisodeRecorder rec(1);
  rec.begin_episode(0);
  rec.end_episode(0);
  const auto snap = rec.snapshot(0);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_LE(snap[0].arrive_ns, snap[0].release_ns);
}

TEST(EpisodeRecorder, AbortCountsWithoutCommitting) {
  EpisodeRecorder rec(2);
  rec.abort_episode(0);
  rec.abort_episode(0);
  EXPECT_EQ(rec.aborted(0), 2u);
  EXPECT_EQ(rec.aborted(1), 0u);
  EXPECT_EQ(rec.recorded(0), 0u);
  EXPECT_TRUE(rec.snapshot(0).empty());
}

TEST(EpisodeRecorder, LastCommonEpisodeArrivals) {
  EpisodeRecorder rec(2, {.ring_capacity = 4});
  rec.record(0, 1000, 2000);
  rec.record(0, 3000, 4000);
  rec.record(1, 1500, 2000);

  // Episode 0 is the newest ordinal present in both lanes.
  const auto arrivals = rec.last_common_episode_arrivals_us();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 1.0);  // 1000 ns
  EXPECT_DOUBLE_EQ(arrivals[1], 1.5);

  EpisodeRecorder empty_lane(2);
  empty_lane.record(0, 10, 20);
  EXPECT_TRUE(empty_lane.last_common_episode_arrivals_us().empty());
}

TEST(ArrivalSpread, KnownVectorNumerics) {
  ArrivalSpreadEstimator est(20.0);
  const std::vector<double> arrivals = {0.0, 10.0, 20.0};
  const double sigma = est.observe_episode(arrivals);

  EXPECT_DOUBLE_EQ(sigma, 10.0);  // sample stddev of {0,10,20}
  EXPECT_DOUBLE_EQ(est.last_sigma_us(), 10.0);
  EXPECT_DOUBLE_EQ(est.last_sigma_tc(), 0.5);
  EXPECT_DOUBLE_EQ(est.last_spread_us(), 20.0);
  EXPECT_EQ(est.last_straggler(), 2u);
  EXPECT_EQ(est.episodes(), 1u);
}

TEST(ArrivalSpread, RankCorrelationTracksPersistence) {
  ArrivalSpreadEstimator est;
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {4.0, 3.0, 2.0, 1.0};

  est.observe_episode(a);
  EXPECT_DOUBLE_EQ(est.rank_correlation_lag1(), 0.0);  // needs two episodes
  est.observe_episode(a);
  EXPECT_DOUBLE_EQ(est.rank_correlation_lag1(), 1.0);  // identical order

  est.reset();
  est.observe_episode(a);
  est.observe_episode(b);
  EXPECT_DOUBLE_EQ(est.rank_correlation_lag1(), -1.0);  // reversed order
}

TEST(ArrivalSpread, SizeChangeResetsSeries) {
  ArrivalSpreadEstimator est;
  est.observe_episode(std::vector<double>{1.0, 5.0, 2.0});
  ASSERT_EQ(est.straggler_counts().size(), 3u);
  EXPECT_EQ(est.straggler_counts()[1], 1u);

  est.observe_episode(std::vector<double>{1.0, 2.0, 3.0, 9.0});
  EXPECT_EQ(est.straggler_counts().size(), 4u);
  EXPECT_EQ(est.straggler_counts()[3], 1u);
  EXPECT_DOUBLE_EQ(est.rank_correlation_lag1(), 0.0);  // series restarted
}

// Ground truth from dist/: per-episode sigma must match stddev_of()
// exactly, and the running mean over many normal episodes must land
// near the generating sigma.
TEST(ArrivalSpread, MatchesSampledNormalGroundTruth) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kEpisodes = 400;
  constexpr double kSigma = 50.0;

  NormalSampler sampler(1000.0, kSigma);
  Xoshiro256 rng(0xA11CE5ULL);
  ArrivalSpreadEstimator est(20.0);

  std::vector<double> arrivals(kThreads);
  for (std::size_t e = 0; e < kEpisodes; ++e) {
    for (double& a : arrivals) a = sampler.sample(rng);
    const double sigma = est.observe_episode(arrivals);
    EXPECT_NEAR(sigma, stddev_of(arrivals), 1e-9);
  }

  EXPECT_EQ(est.episodes(), kEpisodes);
  // Sample sigma of n=8 normal draws is biased slightly low and noisy;
  // 15% absorbs both over 400 episodes.
  EXPECT_NEAR(est.mean_sigma_us(), kSigma, 0.15 * kSigma);
  EXPECT_NEAR(est.mean_sigma_tc(), kSigma / 20.0, 0.15 * kSigma / 20.0);
  // iid draws: arrival order does not persist across episodes.
  EXPECT_LT(std::abs(est.rank_correlation_lag1()), 0.1);
}

// Deterministic single-caller schedule through the split-phase
// interface: tid 1 arrives last (so it is the releaser), tid 0's wait
// finds the episode already over without ever blocking -> exactly one
// overlapped phase.
TEST(Overlapped, CountsNonBlockingNonReleaserPhases) {
  for (const BarrierKind kind : kAllBarrierKinds) {
    if (!barrier_kind_splits(kind)) continue;
    BarrierConfig cfg;
    cfg.kind = kind;
    cfg.participants = 2;
    cfg.degree = 2;
    auto fb = make_fuzzy_barrier(cfg);

    fb->arrive(0);
    fb->arrive(1);  // last arriver: releases the episode
    fb->wait(1);    // releaser, never overlapped
    fb->wait(0);    // episode already over, tid 0 never blocked
    EXPECT_EQ(fb->counters().overlapped, 1u) << to_string(kind);

    // A second, fully serialized episode in the same order.
    fb->arrive(0);
    fb->arrive(1);
    fb->wait(1);
    fb->wait(0);
    EXPECT_EQ(fb->counters().overlapped, 2u) << to_string(kind);
  }
}

TEST(Instrumented, SnapshotAggregatesRecorderAndCounters) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kSenseReversing;
  cfg.participants = 2;
  auto bar = make_instrumented(cfg, {.recorder = {.ring_capacity = 4}});

  constexpr std::size_t kEpisodes = 10;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 2; ++t)
    workers.emplace_back([&bar, t] {
      for (std::size_t e = 0; e < kEpisodes; ++e) bar->arrive_and_wait(t);
    });
  for (auto& w : workers) w.join();

  const InstrumentedSnapshot snap = bar->snapshot();
  EXPECT_EQ(snap.counters.episodes, kEpisodes);
  EXPECT_EQ(snap.recorded, 2 * kEpisodes);
  EXPECT_EQ(snap.dropped, 2 * (kEpisodes - 4));  // ring_capacity 4
  EXPECT_EQ(snap.aborted, 0u);

  // Every retained record is a sane span.
  for (const auto& owned : bar->recorder().snapshot_all())
    EXPECT_LE(owned.record.arrive_ns, owned.record.release_ns);
}

TEST(Instrumented, FuzzySplitPhasesRecord) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCentral;
  cfg.participants = 2;
  auto fb = make_instrumented_fuzzy(cfg);

  fb->arrive(0);
  fb->arrive(1);
  fb->wait(1);
  fb->wait(0);

  const InstrumentedSnapshot snap = fb->snapshot();
  EXPECT_EQ(snap.recorded, 2u);
  EXPECT_EQ(snap.counters.overlapped, 1u);
}

TEST(Instrumented, FactoryRejectsLikePlainFactory) {
  BarrierConfig bad;
  bad.kind = BarrierKind::kCentral;
  bad.participants = 0;
  EXPECT_THROW((void)make_instrumented(bad), std::invalid_argument);

  BarrierConfig non_split;
  non_split.kind = BarrierKind::kDissemination;
  non_split.participants = 2;
  EXPECT_THROW((void)make_instrumented_fuzzy(non_split),
               std::invalid_argument);
}

TEST(MicroHarness, RunsOneKindAndDerivesTelemetry) {
  MicroOptions mo;
  mo.threads = 2;
  mo.episodes = 64;
  mo.ring_capacity = 32;  // force drops so the field is exercised
  const MicroResult r = run_micro_kind(BarrierKind::kCentral, mo);

  EXPECT_EQ(r.kind, to_string(BarrierKind::kCentral));
  EXPECT_EQ(r.threads, 2u);
  EXPECT_EQ(r.episodes, 64u);
  EXPECT_EQ(r.recorded, 2u * 64u);
  EXPECT_EQ(r.dropped, 2u * (64u - 32u));
  EXPECT_GT(r.episodes_per_sec, 0.0);
  EXPECT_GT(r.mean_us, 0.0);
  EXPECT_LE(r.p50_us, r.p99_us);
  EXPECT_GE(r.sigma_us, 0.0);
  EXPECT_DOUBLE_EQ(r.sigma_tc, r.sigma_us / mo.t_c_us);
}

TEST(PhaseLog, ScopedTimersNestWithSlashNames) {
  PhaseLog log;
  {
    ScopedPhaseTimer outer(log, "outer");
    { ScopedPhaseTimer inner(log, "inner"); }
    { ScopedPhaseTimer inner2(log, "inner2"); }
  }
  ASSERT_EQ(log.phases().size(), 3u);
  EXPECT_EQ(log.phases()[0].name, "outer/inner");
  EXPECT_EQ(log.phases()[1].name, "outer/inner2");
  EXPECT_EQ(log.phases()[2].name, "outer");
  for (const auto& p : log.phases()) EXPECT_GE(p.elapsed_s, 0.0);
  // The outer phase wholly contains both inner phases.
  EXPECT_GE(log.phases()[2].elapsed_s,
            log.phases()[0].elapsed_s + log.phases()[1].elapsed_s);
}

}  // namespace
}  // namespace imbar::obs
