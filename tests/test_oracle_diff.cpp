// Differential test: the event-driven barrier simulator against an
// independently implemented oracle.
//
// The oracle computes the same model a completely different way: it
// processes counters in topological (children-first) order; for each
// counter it gathers the arrival times (attached processors' signals
// plus child fill times), sorts them, and serves them sequentially with
// start_k = max(arrival_k, done_{k-1}). For distinct arrival times and a
// uniform service time this is exactly the FIFO queueing discipline of
// the DES, with none of its machinery (no event heap, no resources, no
// callbacks).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simbarrier/tree_sim.hpp"
#include "util/prng.hpp"

namespace imbar::simb {
namespace {

struct OracleResult {
  double release = 0.0;
  std::vector<double> fill_time;  // per counter
};

OracleResult oracle_release(const Topology& topo,
                            const std::vector<double>& signals, double t_c) {
  const std::size_t nc = topo.counters();
  OracleResult res;
  res.fill_time.assign(nc, -1.0);

  // Children-first (topological) order by repeated scanning — O(n^2),
  // deliberately naive and independent of the DES implementation.
  std::vector<bool> done(nc, false);
  std::size_t remaining = nc;
  // Attached processors per counter, from the initial placement.
  std::vector<std::vector<int>> attached(nc);
  for (std::size_t p = 0; p < signals.size(); ++p)
    attached[static_cast<std::size_t>(topo.initial_counter()[p])].push_back(
        static_cast<int>(p));

  while (remaining > 0) {
    for (std::size_t c = 0; c < nc; ++c) {
      if (done[c]) continue;
      const auto& node = topo.node(static_cast<int>(c));
      bool ready = true;
      for (int child : node.children)
        if (!done[static_cast<std::size_t>(child)]) ready = false;
      if (!ready) continue;

      std::vector<double> arrivals;
      for (int p : attached[c]) arrivals.push_back(signals[static_cast<std::size_t>(p)]);
      for (int child : node.children)
        arrivals.push_back(res.fill_time[static_cast<std::size_t>(child)]);
      std::sort(arrivals.begin(), arrivals.end());

      double busy = 0.0;
      bool first = true;
      for (double a : arrivals) {
        const double start = first ? a : std::max(a, busy);
        busy = start + t_c;
        first = false;
      }
      res.fill_time[c] = busy;
      done[c] = true;
      --remaining;
    }
  }
  res.release = res.fill_time[static_cast<std::size_t>(topo.root())];
  return res;
}

struct DiffCase {
  std::size_t procs;
  std::size_t degree;
  TreeKind kind;
  double sigma;
};

class OracleDiff : public ::testing::TestWithParam<DiffCase> {};

TEST_P(OracleDiff, ReleaseTimesAgreeOverRandomTrials) {
  const auto [procs, degree, kind, sigma] = GetParam();
  const Topology topo = kind == TreeKind::kPlain
                            ? Topology::plain(procs, degree)
                            : Topology::mcs(procs, degree);
  SimOptions opts;
  opts.t_c = 20.0;
  TreeBarrierSim sim(topo, opts);

  Xoshiro256 rng(0xD1FFu ^ procs ^ (degree << 8));
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> signals(procs);
    for (auto& s : signals) s = rng.uniform() * sigma;  // distinct w.p. 1
    sim.reset();
    const auto r = sim.run_iteration(signals);
    const auto oracle = oracle_release(topo, signals, opts.t_c);
    ASSERT_NEAR(r.release, oracle.release, 1e-9)
        << "trial " << trial << " p=" << procs << " d=" << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleDiff,
    ::testing::Values(DiffCase{4, 2, TreeKind::kPlain, 100.0},
                      DiffCase{16, 2, TreeKind::kPlain, 50.0},
                      DiffCase{16, 4, TreeKind::kPlain, 0.0},
                      DiffCase{64, 4, TreeKind::kPlain, 500.0},
                      DiffCase{64, 8, TreeKind::kPlain, 30.0},
                      DiffCase{100, 3, TreeKind::kPlain, 200.0},
                      DiffCase{256, 16, TreeKind::kPlain, 1000.0},
                      DiffCase{5, 2, TreeKind::kMcs, 100.0},
                      DiffCase{17, 2, TreeKind::kMcs, 80.0},
                      DiffCase{56, 4, TreeKind::kMcs, 300.0},
                      DiffCase{64, 4, TreeKind::kMcs, 500.0},
                      DiffCase{200, 16, TreeKind::kMcs, 700.0},
                      DiffCase{256, 4, TreeKind::kMcs, 1500.0}));

TEST(OracleDiff, TraceObserverSeesEveryUpdateConsistently) {
  const Topology topo = Topology::mcs(32, 4);
  SimOptions opts;
  opts.t_c = 10.0;
  TreeBarrierSim sim(topo, opts);

  std::vector<UpdateEvent> trace;
  sim.set_trace_observer([&](const UpdateEvent& ev) { trace.push_back(ev); });

  Xoshiro256 rng(99);
  std::vector<double> signals(32);
  for (auto& s : signals) s = rng.uniform() * 200.0;
  const auto r = sim.run_iteration(signals);

  // One event per update, matching the iteration's total.
  ASSERT_EQ(trace.size(), r.updates);
  // Completion order is nondecreasing in time; waits are nonnegative;
  // exactly counters() fills; the last fill is the root at release time.
  double prev_done = 0.0;
  std::size_t fills = 0;
  for (const auto& ev : trace) {
    EXPECT_GE(ev.start, ev.requested);
    EXPECT_DOUBLE_EQ(ev.done, ev.start + opts.t_c);
    EXPECT_GE(ev.done, prev_done);
    prev_done = ev.done;
    fills += ev.filled ? 1 : 0;
  }
  EXPECT_EQ(fills, topo.counters());
  EXPECT_TRUE(trace.back().filled);
  EXPECT_EQ(trace.back().counter, topo.root());
  EXPECT_DOUBLE_EQ(trace.back().done, r.release);
}

TEST(OracleDiff, PerProcUpdateSumsMatchTrace) {
  const Topology topo = Topology::plain(24, 3);
  TreeBarrierSim sim(topo, SimOptions{});
  std::vector<int> per_proc(24, 0);
  sim.set_trace_observer(
      [&](const UpdateEvent& ev) { ++per_proc[static_cast<std::size_t>(ev.proc)]; });
  Xoshiro256 rng(5);
  std::vector<double> signals(24);
  for (auto& s : signals) s = rng.uniform() * 100.0;
  sim.run_iteration(signals);
  EXPECT_EQ(per_proc, sim.last_updates_per_proc());
}

}  // namespace
}  // namespace imbar::simb
