// Expected extremes of normal samples (paper Eq. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "dist/normal.hpp"
#include "dist/order_stats.hpp"
#include "dist/samplers.hpp"
#include "util/prng.hpp"

namespace imbar {
namespace {

TEST(ExpectedMax, TrivialCases) {
  EXPECT_DOUBLE_EQ(expected_max_normal_asymptotic(1), 0.0);
  EXPECT_DOUBLE_EQ(expected_max_normal_exact(1), 0.0);
}

TEST(ExpectedMax, ExactKnownValues) {
  // E[max of 2 N(0,1)] = 1/sqrt(pi); well-tabulated small-n values.
  EXPECT_NEAR(expected_max_normal_exact(2), 1.0 / std::sqrt(M_PI), 1e-8);
  EXPECT_NEAR(expected_max_normal_exact(3), 0.846284375, 1e-6);
  EXPECT_NEAR(expected_max_normal_exact(5), 1.162964, 1e-5);
  EXPECT_NEAR(expected_max_normal_exact(10), 1.538753, 1e-5);
}

TEST(ExpectedMax, ExactIsMonotoneInP) {
  double prev = 0.0;
  for (std::size_t p : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    const double v = expected_max_normal_exact(p);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(ExpectedMax, AsymptoticApproachesExactForLargeP) {
  // The Eq. 5 asymptotic converges like (ln ln p)/(ln p)^(3/2): slow.
  // Check it is within ~8% by p = 256 and that the error shrinks.
  double prev_err = 1.0;
  for (std::size_t p : {256u, 1024u, 4096u, 16384u}) {
    const double exact = expected_max_normal_exact(p);
    const double asym = expected_max_normal_asymptotic(p);
    const double err = std::fabs(asym / exact - 1.0);
    EXPECT_LT(err, 0.08) << "p = " << p;
    EXPECT_LE(err, prev_err + 1e-12) << "p = " << p;
    prev_err = err;
  }
}

TEST(ExpectedMax, ExactMatchesMonteCarlo) {
  Xoshiro256 rng(31);
  NormalSampler normal(0.0, 1.0);
  const std::size_t p = 64;
  double sum = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    double mx = -1e300;
    for (std::size_t i = 0; i < p; ++i) mx = std::max(mx, normal.sample(rng));
    sum += mx;
  }
  EXPECT_NEAR(sum / trials, expected_max_normal_exact(p), 0.02);
}

TEST(Blom, ExtremesAndMedian) {
  // Median order statistic of odd n sits at 0.
  EXPECT_NEAR(expected_order_stat_blom(3, 5), 0.0, 1e-12);
  // Max estimate close to the exact expected max.
  EXPECT_NEAR(expected_order_stat_blom(64, 64), expected_max_normal_exact(64),
              0.05);
  // Symmetric: r-th smallest = -(r-th largest).
  EXPECT_NEAR(expected_order_stat_blom(1, 10),
              -expected_order_stat_blom(10, 10), 1e-12);
}

TEST(Blom, ClampsOutOfRangeRanks) {
  EXPECT_DOUBLE_EQ(expected_order_stat_blom(0, 10),
                   expected_order_stat_blom(1, 10));
  EXPECT_DOUBLE_EQ(expected_order_stat_blom(99, 10),
                   expected_order_stat_blom(10, 10));
  EXPECT_DOUBLE_EQ(expected_order_stat_blom(1, 0), 0.0);
}

TEST(ExpectedMax, Eq5ShapeUsedByModel) {
  // The paper's Eq. 5 at p = 4096: sqrt(2 ln p) dominates.
  const double v = expected_max_normal_asymptotic(4096);
  EXPECT_GT(v, 3.0);
  EXPECT_LT(v, 4.5);
}

}  // namespace
}  // namespace imbar
