// Perf-regression gate (src/check/perf_gate.hpp): envelope parsing,
// band comparison semantics, and the trend serialization — all on
// canned data, no timing dependence. The gate's live measurements come
// from bench_gate / ctest -L perf-gate; these tests pin the decision
// logic those runs rely on (an inflated sample MUST fail, an in-band
// sample MUST pass).
#include "check/perf_gate.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace imbar::check {
namespace {

/// Canned imbar.bench.v1 document with micro-shaped rows.
std::string bench_doc(
    const std::vector<std::tuple<std::string, int, int, double, double>>&
        rows) {
  std::ostringstream os;
  os << R"({"schema":"imbar.bench.v1","name":"micro_real_barriers",)"
     << R"("params":{"episodes":500},"rows":[)";
  bool first = true;
  for (const auto& [kind, threads, episodes, mean, p99] : rows) {
    if (!first) os << ',';
    first = false;
    os << R"({"kind":")" << kind << R"(","threads":)" << threads
       << R"(,"episodes":)" << episodes << R"(,"mean_us":)" << mean
       << R"(,"p99_us":)" << p99 << R"(,"episodes_per_sec":1000})";
  }
  os << "]}";
  return os.str();
}

std::vector<PerfEnvelope> load(const std::string& doc) {
  return load_envelopes(obs::json::parse(doc));
}

PerfEnvelope make(const std::string& kind, std::uint64_t threads,
                  std::uint64_t episodes, double mean, double p99) {
  PerfEnvelope e;
  e.kind = kind;
  e.threads = threads;
  e.episodes = episodes;
  e.mean_us = mean;
  e.p99_us = p99;
  e.episodes_per_sec = 1000.0;
  return e;
}

TEST(PerfGateEnvelope, RoundTripFromBenchDocument) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 3.5, 11.0},
                                    {"flat", 4, 500, 7.25, 22.5},
                                    {"central", 2, 500, 60.0, 180.0}}));
  ASSERT_EQ(envs.size(), 3u);
  EXPECT_EQ(envs[0].kind, "flat");
  EXPECT_EQ(envs[0].threads, 2u);
  EXPECT_EQ(envs[0].episodes, 500u);
  EXPECT_DOUBLE_EQ(envs[0].mean_us, 3.5);
  EXPECT_DOUBLE_EQ(envs[0].p99_us, 11.0);
  EXPECT_DOUBLE_EQ(envs[0].episodes_per_sec, 1000.0);
  EXPECT_EQ(envs[1].threads, 4u);
  EXPECT_EQ(envs[2].kind, "central");
}

TEST(PerfGateEnvelope, RoundTripFromMicroResults) {
  obs::MicroResult r;
  r.kind = "sense";
  r.threads = 2;
  r.episodes = 300;
  r.mean_us = 12.5;
  r.p99_us = 40.0;
  r.episodes_per_sec = 8000.0;
  const auto envs = envelopes_from_results({r});
  ASSERT_EQ(envs.size(), 1u);
  EXPECT_EQ(envs[0].kind, "sense");
  EXPECT_EQ(envs[0].threads, 2u);
  EXPECT_DOUBLE_EQ(envs[0].mean_us, 12.5);
  EXPECT_DOUBLE_EQ(envs[0].p99_us, 40.0);
}

TEST(PerfGateEnvelope, RejectsMissingFieldsAndDuplicates) {
  // Missing mean_us.
  EXPECT_THROW(
      (void)load(R"({"schema":"imbar.bench.v1","name":"x","params":{},)"
                 R"("rows":[{"kind":"flat","threads":2,"episodes":10,)"
                 R"("p99_us":1}]})"),
      std::runtime_error);
  // Missing kind.
  EXPECT_THROW(
      (void)load(R"({"schema":"imbar.bench.v1","name":"x","params":{},)"
                 R"("rows":[{"threads":2,"episodes":10,"mean_us":1,)"
                 R"("p99_us":1}]})"),
      std::runtime_error);
  // Duplicate (kind, threads) pair.
  EXPECT_THROW((void)load(bench_doc({{"flat", 2, 500, 3.5, 11.0},
                                     {"flat", 2, 500, 3.6, 11.5}})),
               std::runtime_error);
  // Same kind at different thread counts is fine.
  EXPECT_NO_THROW((void)load(bench_doc({{"flat", 2, 500, 3.5, 11.0},
                                        {"flat", 4, 500, 7.0, 20.0}})));
}

TEST(PerfGate, InflatedSampleBreaches) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0}}));
  // 4x the envelope mean against the default 3x tolerance: must fail.
  const auto report =
      gate_compare(envs, {make("flat", 2, 500, 40.0, 30.0)}, {});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].verdict, PerfVerdict::kBreach);
  EXPECT_DOUBLE_EQ(report.findings[0].mean_ratio, 4.0);
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.breaches(), 1u);
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
}

TEST(PerfGate, InBandSamplePasses) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0},
                                    {"central", 2, 500, 60.0, 180.0}}));
  const auto report = gate_compare(envs,
                                   {make("flat", 2, 500, 12.0, 35.0),
                                    make("central", 2, 500, 55.0, 200.0)},
                                   {});
  ASSERT_EQ(report.findings.size(), 2u);
  for (const auto& f : report.findings)
    EXPECT_EQ(f.verdict, PerfVerdict::kInBand) << f.kind;
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.breaches(), 0u);
  EXPECT_NE(report.summary().find("PASS"), std::string::npos);
}

TEST(PerfGate, ExactlyAtToleranceBoundPasses) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0}}));
  PerfGateOptions opts;
  opts.mean_tolerance = 3.0;
  opts.p99_tolerance = 5.0;
  // mean ratio exactly 3.0, p99 ratio exactly 5.0: bound is inclusive.
  const auto report =
      gate_compare(envs, {make("flat", 2, 500, 30.0, 150.0)}, opts);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].verdict, PerfVerdict::kInBand);
  // One ulp past the bound breaches.
  const auto over =
      gate_compare(envs, {make("flat", 2, 500, 30.0001, 150.0)}, opts);
  EXPECT_EQ(over.findings[0].verdict, PerfVerdict::kBreach);
}

TEST(PerfGate, P99TailBreachesIndependently) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0}}));
  // Mean well in band, p99 at 6x against the default 5x tolerance.
  const auto report =
      gate_compare(envs, {make("flat", 2, 500, 11.0, 180.0)}, {});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].verdict, PerfVerdict::kBreach);
  EXPECT_NE(report.findings[0].note.find("p99"), std::string::npos);
}

TEST(PerfGate, UnderSampledEnvelopeIsAdvisory) {
  // Envelope backed by only 50 episodes against min_samples=200: the
  // same 4x inflation that breaches above must downgrade to advisory.
  const auto envs = load(bench_doc({{"flat", 2, 50, 10.0, 30.0}}));
  const auto report =
      gate_compare(envs, {make("flat", 2, 500, 40.0, 30.0)}, {});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].verdict, PerfVerdict::kAdvisory);
  EXPECT_TRUE(report.passed());
  // At exactly min_samples the band is enforceable again.
  PerfGateOptions opts;
  opts.min_samples = 50;
  const auto enforced =
      gate_compare(envs, {make("flat", 2, 500, 40.0, 30.0)}, opts);
  EXPECT_EQ(enforced.findings[0].verdict, PerfVerdict::kBreach);
}

TEST(PerfGate, DegenerateEnvelopeBandIsAdvisory) {
  const auto report = gate_compare({make("flat", 2, 500, 0.0, 30.0)},
                                   {make("flat", 2, 500, 40.0, 30.0)}, {});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].verdict, PerfVerdict::kAdvisory);
  EXPECT_TRUE(report.passed());
}

TEST(PerfGate, MissingPairFailsTheGate) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0},
                                    {"flat", 4, 500, 20.0, 60.0}}));
  // Fresh run dropped the threads=4 sweep: coverage regression.
  const auto report =
      gate_compare(envs, {make("flat", 2, 500, 10.0, 30.0)}, {});
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].verdict, PerfVerdict::kInBand);
  EXPECT_EQ(report.findings[1].verdict, PerfVerdict::kMissing);
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.breaches(), 0u);  // missing != breach, both fail
}

TEST(PerfGate, FreshPairWithoutEnvelopeIsAdvisory) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0}}));
  // A brand-new kind shows up before its envelope lands: reported, not
  // failed, so adding a kind does not require regenerating envelopes
  // in the same commit.
  const auto report = gate_compare(envs,
                                   {make("flat", 2, 500, 10.0, 30.0),
                                    make("hierarchical", 2, 500, 5.0, 15.0)},
                                   {});
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[1].verdict, PerfVerdict::kAdvisory);
  EXPECT_EQ(report.findings[1].kind, "hierarchical");
  EXPECT_TRUE(report.passed());
}

TEST(PerfGateTrend, LineSerializesAndParses) {
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0}}));
  const auto report =
      gate_compare(envs, {make("flat", 2, 500, 40.0, 30.0)}, {});
  const std::string line = trend_line(report, 1754600000u);
  const obs::json::Value v = obs::json::parse(line);
  EXPECT_EQ(v.find("schema")->string, kTrendSchema);
  EXPECT_DOUBLE_EQ(v.find("unix_ts")->number, 1754600000.0);
  EXPECT_FALSE(v.find("passed")->boolean);
  EXPECT_DOUBLE_EQ(v.find("breaches")->number, 1.0);
  ASSERT_EQ(v.find("entries")->array.size(), 1u);
  const obs::json::Value& e = v.find("entries")->array[0];
  EXPECT_EQ(e.find("kind")->string, "flat");
  EXPECT_EQ(e.find("verdict")->string, "breach");
  EXPECT_DOUBLE_EQ(e.find("mean_ratio")->number, 4.0);
}

TEST(PerfGateTrend, AppendAccumulatesLines) {
  const std::string path =
      testing::TempDir() + "perf_gate_trend_test.jsonl";
  std::remove(path.c_str());
  const auto envs = load(bench_doc({{"flat", 2, 500, 10.0, 30.0}}));
  const auto ok = gate_compare(envs, {make("flat", 2, 500, 10.0, 30.0)}, {});
  append_trend(path, ok, 100u);
  append_trend(path, ok, 200u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<double> stamps;
  while (std::getline(in, line)) {
    const obs::json::Value v = obs::json::parse(line);
    EXPECT_EQ(v.find("schema")->string, kTrendSchema);
    stamps.push_back(v.find("unix_ts")->number);
  }
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_DOUBLE_EQ(stamps[0], 100.0);
  EXPECT_DOUBLE_EQ(stamps[1], 200.0);
  std::remove(path.c_str());
}

TEST(PerfGateVerdict, Names) {
  EXPECT_STREQ(to_string(PerfVerdict::kInBand), "in-band");
  EXPECT_STREQ(to_string(PerfVerdict::kAdvisory), "advisory");
  EXPECT_STREQ(to_string(PerfVerdict::kBreach), "breach");
  EXPECT_STREQ(to_string(PerfVerdict::kMissing), "missing");
}

}  // namespace
}  // namespace imbar::check
