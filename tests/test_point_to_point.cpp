// Point-to-point neighbor synchronization.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "barrier/point_to_point.hpp"
#include "util/cacheline.hpp"

#include "barrier_test_support.hpp"

namespace imbar {
namespace {

using test::run_threads;

TEST(PointToPoint, Validation) {
  EXPECT_THROW(PointToPointSync(0), std::invalid_argument);
}

TEST(PointToPoint, PostReturnsMonotoneEpochs) {
  PointToPointSync sync(2);
  EXPECT_EQ(sync.post(0), 1u);
  EXPECT_EQ(sync.post(0), 2u);
  EXPECT_EQ(sync.posted(0), 2u);
  EXPECT_EQ(sync.posted(1), 0u);
}

TEST(PointToPoint, StencilNeighborsAreClipped) {
  PointToPointSync sync(4);
  EXPECT_EQ(sync.stencil_neighbors(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(sync.stencil_neighbors(1), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(sync.stencil_neighbors(3), (std::vector<std::size_t>{2}));
  PointToPointSync solo(1);
  EXPECT_TRUE(solo.stencil_neighbors(0).empty());
}

TEST(PointToPoint, WaitForBlocksUntilPosted) {
  PointToPointSync sync(2);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    sync.wait_for(0, 1);
    released.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(released.load(std::memory_order_acquire));
  sync.post(0);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(PointToPoint, StencilChainEnforcesLocalOrdering) {
  // Each thread writes phase p, posts, waits for its stencil neighbors,
  // then verifies the neighbors (and only the neighbors) are at >= p.
  constexpr std::size_t kThreads = 6;
  constexpr int kPhases = 400;
  PointToPointSync sync(kThreads);
  std::vector<PaddedAtomic<int>> phase(kThreads);
  std::atomic<bool> violation{false};
  run_threads(kThreads, [&](std::size_t tid) {
    const auto neighbors = sync.stencil_neighbors(tid);
    for (int p = 1; p <= kPhases; ++p) {
      phase[tid].value.store(p, std::memory_order_release);
      const auto ep = sync.post(tid);
      sync.wait_all(neighbors, ep);
      for (std::size_t o : neighbors)
        if (phase[o].value.load(std::memory_order_acquire) < p)
          violation.store(true, std::memory_order_relaxed);
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(PointToPoint, AllowsDistantThreadsToDecouple) {
  // Thread 0 and thread 3 share no dependence: thread 0 can finish all
  // its epochs while thread 3 is still asleep, which no barrier allows.
  PointToPointSync sync(4);
  std::atomic<bool> t0_done{false};
  std::thread t0([&] {
    for (int i = 0; i < 50; ++i) sync.post(0);
    t0_done.store(true, std::memory_order_release);
  });
  t0.join();
  EXPECT_TRUE(t0_done.load());
  EXPECT_EQ(sync.posted(0), 50u);
  EXPECT_EQ(sync.posted(3), 0u);
}

TEST(PointToPoint, SkewIsBoundedByDependenceChain) {
  // With the stencil chain, thread 0 can run at most `distance` epochs
  // ahead of thread n-1 plus one; verify threads stay within a small
  // skew while one straggler sleeps.
  constexpr std::size_t kThreads = 4;
  PointToPointSync sync(kThreads);
  std::atomic<std::uint64_t> max_skew{0};
  run_threads(kThreads, [&](std::size_t tid) {
    const auto neighbors = sync.stencil_neighbors(tid);
    for (int i = 0; i < 300; ++i) {
      if (tid == kThreads - 1 && i % 10 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      const auto ep = sync.post(tid);
      sync.wait_all(neighbors, ep);
      // Snapshot skew vs the slowest participant (racy but bounded).
      std::uint64_t lo = ~0ULL, hi = 0;
      for (std::size_t o = 0; o < kThreads; ++o) {
        const auto v = sync.posted(o);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      std::uint64_t skew = hi - lo;
      std::uint64_t cur = max_skew.load();
      while (skew > cur && !max_skew.compare_exchange_weak(cur, skew)) {
      }
    }
  });
  // Chain distance is kThreads-1; +1 for in-flight post.
  EXPECT_LE(max_skew.load(), kThreads);
  EXPECT_GE(max_skew.load(), 1u);
}

}  // namespace
}  // namespace imbar
