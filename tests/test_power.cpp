// Power-iteration application: numerics and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/power/power_iteration.hpp"

namespace imbar::power {
namespace {

TEST(Power, Validation) {
  PowerParams p;
  p.threads = 0;
  EXPECT_THROW(run_power_iteration(p), std::invalid_argument);
  p = {};
  p.n = 2;
  p.threads = 4;
  EXPECT_THROW(run_power_iteration(p), std::invalid_argument);
  p = {};
  p.iterations = 0;
  EXPECT_THROW(run_power_iteration(p), std::invalid_argument);
}

TEST(Power, ConvergesToDominantEigenvalue) {
  // A = I + C with C[i][j] = 1/(1+|i-j|): Perron-Frobenius gives
  // lambda_max in (min row sum, max row sum) = (1 + H(n/2)-ish, 1 +
  // 2 H(n)); the residual must collapse under iteration.
  PowerParams p;
  p.n = 64;
  p.iterations = 120;
  p.threads = 1;
  const auto r = run_power_iteration(p);
  EXPECT_GT(r.eigenvalue, 2.0);   // above the diagonal alone
  EXPECT_LT(r.eigenvalue, 12.0);  // below 1 + max row sum
  EXPECT_LT(r.residual, 1e-8);
}

TEST(Power, ResidualShrinksWithIterations) {
  PowerParams p;
  p.n = 48;
  p.threads = 2;
  p.iterations = 3;
  const double early = run_power_iteration(p).residual;
  p.iterations = 40;
  const double late = run_power_iteration(p).residual;
  EXPECT_LT(late, early);
}

TEST(Power, BitwiseDeterministicAcrossBarrierKinds) {
  // Fixed thread count => identical partition => identical arithmetic,
  // whatever the barrier.
  PowerParams p;
  p.n = 72;
  p.threads = 4;
  p.iterations = 25;
  p.barrier.kind = BarrierKind::kCentral;
  const double base = run_power_iteration(p).eigenvalue;
  for (auto kind : {BarrierKind::kCombiningTree, BarrierKind::kMcsTree,
                    BarrierKind::kDynamicPlacement, BarrierKind::kDissemination,
                    BarrierKind::kTournament, BarrierKind::kMcsLocalSpin,
                    BarrierKind::kAdaptive}) {
    p.barrier.kind = kind;
    p.barrier.degree = 2;
    EXPECT_DOUBLE_EQ(run_power_iteration(p).eigenvalue, base)
        << to_string(kind);
  }
}

TEST(Power, ThreadCountOnlyPerturbsRounding) {
  PowerParams p;
  p.n = 60;
  p.iterations = 30;
  p.threads = 1;
  const double serial = run_power_iteration(p).eigenvalue;
  for (std::size_t t : {2u, 3u, 5u}) {
    p.threads = t;
    const double par = run_power_iteration(p).eigenvalue;
    EXPECT_NEAR(par, serial, std::fabs(serial) * 1e-12) << t << " threads";
  }
}

TEST(Power, ReferenceHelperMatchesSerialRun) {
  EXPECT_DOUBLE_EQ(reference_eigenvalue(40, 20), [] {
    PowerParams p;
    p.n = 40;
    p.iterations = 20;
    p.threads = 1;
    return run_power_iteration(p).eigenvalue;
  }());
}

TEST(Power, BarrierCountersSeeThreePhasesPerIteration) {
  PowerParams p;
  p.n = 32;
  p.threads = 4;
  p.iterations = 10;
  p.barrier.kind = BarrierKind::kCombiningTree;
  p.barrier.degree = 2;
  const auto r = run_power_iteration(p);
  EXPECT_EQ(r.barrier_counters.episodes, 30u);
}

TEST(Power, InjectedImbalanceRaisesArrivalSigma) {
  PowerParams p;
  p.n = 32;
  p.threads = 3;
  p.iterations = 20;
  const double calm = run_power_iteration(p).sigma_arrival_us;
  p.extra_work_sigma_us = 1500.0;
  const double wild = run_power_iteration(p).sigma_arrival_us;
  EXPECT_GT(wild, calm);
}

TEST(Power, UnitNormIsMaintained) {
  PowerParams p;
  p.n = 50;
  p.threads = 2;
  p.iterations = 80;
  const auto r = run_power_iteration(p);
  // If x stayed unit, the Rayleigh quotient equals the eigenvalue
  // estimate and the residual collapses relative to lambda once the
  // subdominant modes have decayed.
  EXPECT_LT(r.residual / r.eigenvalue, 1e-6);
}

}  // namespace
}  // namespace imbar::power
