// PRNG determinism, stream independence, and distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/prng.hpp"

namespace imbar {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownFirstValue) {
  // Reference value of splitmix64(0) from the public-domain reference
  // implementation.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SubstreamsAreDistinct) {
  auto a = Xoshiro256::substream(99, 0);
  auto b = Xoshiro256::substream(99, 1);
  int same = 0;
  for (int i = 0; i < 256; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, SubstreamIsDeterministic) {
  auto a = Xoshiro256::substream(5, 3);
  auto b = Xoshiro256::substream(5, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 g(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformOpenNeverZeroOrOne) {
  Xoshiro256 g(321);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform_open();
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanNearHalf) {
  Xoshiro256 g(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 g(77);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(g.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 g(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 g(2024);
  const std::uint64_t bound = 7;
  std::vector<int> counts(bound, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[g.below(bound)];
  for (auto c : counts) EXPECT_NEAR(c, n / static_cast<int>(bound), n / 100);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 g(1);
  std::vector<int> v{3, 1, 2};
  std::shuffle(v.begin(), v.end(), g);  // compiles and runs
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(Xoshiro256, NoShortCycles) {
  Xoshiro256 g(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(g.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace imbar
