// robust::QuorumBarrier: deadline-budgeted k-of-n release, generation
// ledger fast-forwarding, quarantine handoff/restoration, the health
// state machine with seeded strict-mode probes, stall/reset, and the
// metrics fold. Scenarios are scripted so every count has a closed
// form; timing only moves *when* a release happens, never *what* the
// ledgers record (see each test's note on why).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "barrier/factory.hpp"
#include "barrier_test_support.hpp"
#include "obs/episode_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "robust/quorum_barrier.hpp"
#include "robust/quorum_metrics.hpp"
#include "util/spin_wait.hpp"

namespace imbar::robust {
namespace {

using namespace std::chrono_literals;
using test::run_threads;

BarrierConfig quorum_config(std::size_t participants, std::size_t k,
                            std::chrono::nanoseconds budget,
                            BarrierKind kind = BarrierKind::kCentral) {
  BarrierConfig cfg;
  cfg.kind = kind;
  cfg.participants = participants;
  cfg.quorum.quorum = k;
  cfg.quorum.deadline_budget = budget;
  return cfg;
}

/// Test-friendly defaults: flat budgets (degraded phases wait just as
/// long as healthy ones, so scripted sitters can't cause over-misses)
/// and quarantine off unless the test is about quarantine.
QuorumOptions flat_options() {
  QuorumOptions opts;
  opts.quarantine_after = ~static_cast<std::size_t>(0);
  opts.degraded_budget_scale = 1.0;
  opts.probe_budget_scale = 1.0;
  return opts;
}

TEST(QuorumBarrier, StrictCohortIsAllOk) {
  // k == 0 disables degradation entirely: unbounded waits, every phase
  // strict, and the accounting still runs.
  constexpr std::size_t kN = 4;
  constexpr int kPhases = 12;
  QuorumBarrier qb(quorum_config(kN, 0, 0ns), flat_options());

  run_threads(kN, [&](std::size_t tid) {
    for (int g = 0; g < kPhases; ++g)
      ASSERT_EQ(qb.arrive_and_wait(tid), QuorumStatus::kOk);
  });

  const QuorumStats s = qb.stats();
  EXPECT_EQ(s.strict_releases, static_cast<std::uint64_t>(kPhases));
  EXPECT_EQ(s.quorum_releases, 0u);
  EXPECT_EQ(s.fast_forwards, 0u);
  EXPECT_EQ(qb.phase(), static_cast<std::uint64_t>(kPhases));
  EXPECT_EQ(qb.health(), QuorumHealth::kHealthy);
  for (std::size_t t = 0; t < kN; ++t) {
    const MemberAccount a = qb.account(t);
    EXPECT_EQ(a.arrivals, static_cast<std::uint64_t>(kPhases));
    EXPECT_EQ(a.missed_phases, 0u);
    EXPECT_EQ(a.late_arrivals, 0u);
  }
  EXPECT_TRUE(qb.lateness_samples().empty());
  EXPECT_NO_THROW(qb.check_invariants());
}

TEST(QuorumBarrier, SoloQuorumReleaseAndFastForwardAccounting) {
  // t0 runs kSolo phases alone with k = 1: each releases on quorum at
  // the budget. t1 then reconciles: exactly kSolo fast-forwards (one
  // fall-behind episode), then one joint strict phase. Counts are
  // timing-independent: t1 does not arrive at all until t0 is done, so
  // no release can accidentally include or exclude it.
  constexpr std::size_t kN = 2;
  constexpr int kSolo = 4;
  QuorumBarrier qb(quorum_config(kN, 1, 5ms), flat_options());

  std::atomic<bool> solo_done{false};
  run_threads(kN, [&](std::size_t tid) {
    if (tid == 0) {
      for (int g = 0; g < kSolo; ++g)
        ASSERT_EQ(qb.arrive_and_wait(0), QuorumStatus::kQuorum);
      solo_done.store(true, std::memory_order_release);
    } else {
      spin_until([&] { return solo_done.load(std::memory_order_acquire); });
      for (int g = 0; g < kSolo; ++g)
        ASSERT_EQ(qb.arrive_and_wait(1), QuorumStatus::kFastForward);
    }
    ASSERT_EQ(qb.arrive_and_wait(tid), QuorumStatus::kOk);
  });

  const QuorumStats s = qb.stats();
  EXPECT_EQ(s.quorum_releases, static_cast<std::uint64_t>(kSolo));
  EXPECT_EQ(s.strict_releases, 1u);
  EXPECT_EQ(s.fast_forwards, static_cast<std::uint64_t>(kSolo));
  EXPECT_EQ(s.min_quorum_arrivals, 1u);
  EXPECT_EQ(qb.phase(), static_cast<std::uint64_t>(kSolo) + 1);

  const MemberAccount a0 = qb.account(0);
  EXPECT_EQ(a0.arrivals, static_cast<std::uint64_t>(kSolo) + 1);
  EXPECT_EQ(a0.missed_phases, 0u);
  const MemberAccount a1 = qb.account(1);
  EXPECT_EQ(a1.arrivals, 1u);
  EXPECT_EQ(a1.missed_phases, static_cast<std::uint64_t>(kSolo));
  EXPECT_EQ(a1.late_arrivals, 1u);  // one episode spanning kSolo phases

  // Every quorum release saw t1 lagging; the lateness samples record
  // how far behind the ledger it was at each release: 1, 2, ..., kSolo.
  const std::vector<std::uint64_t> lags = qb.lateness_samples();
  ASSERT_EQ(lags.size(), static_cast<std::size_t>(kSolo));
  for (int g = 0; g < kSolo; ++g)
    EXPECT_EQ(lags[static_cast<std::size_t>(g)],
              static_cast<std::uint64_t>(g) + 1);

  // The quorum-release events carry the fence owner's view: phase and
  // arrival count (always 1 here).
  std::size_t quorum_events = 0;
  for (const QuorumEvent& e : qb.events())
    if (e.kind == QuorumEventKind::kQuorumRelease) {
      EXPECT_EQ(e.phase, static_cast<std::uint64_t>(quorum_events));
      EXPECT_EQ(e.arrived, 1u);
      ++quorum_events;
    }
  EXPECT_EQ(quorum_events, static_cast<std::size_t>(kSolo));
  EXPECT_NO_THROW(qb.check_invariants());
}

TEST(QuorumBarrier, MetricsFoldMatchesStats) {
  // One solo quorum phase + one reconcile pass, then fold into a
  // registry: every counter mirrors stats() and the lateness histogram
  // shows up in the snapshot.
  QuorumBarrier qb(quorum_config(2, 1, 1ms), flat_options());
  std::atomic<bool> done{false};
  run_threads(2, [&](std::size_t tid) {
    if (tid == 0) {
      ASSERT_EQ(qb.arrive_and_wait(0), QuorumStatus::kQuorum);
      done.store(true, std::memory_order_release);
    } else {
      spin_until([&] { return done.load(std::memory_order_acquire); });
      ASSERT_EQ(qb.arrive_and_wait(1), QuorumStatus::kFastForward);
    }
  });

  obs::MetricsRegistry registry;
  fold_quorum_metrics(qb, registry, "quorum");
  const QuorumStats s = qb.stats();
  EXPECT_EQ(registry.counter("quorum.strict_releases"), s.strict_releases);
  EXPECT_EQ(registry.counter("quorum.quorum_releases"), s.quorum_releases);
  EXPECT_EQ(registry.counter("quorum.fast_forwards"), s.fast_forwards);
  EXPECT_EQ(registry.counter("quorum.fences"), s.fences);
  EXPECT_EQ(registry.counter("quorum.min_quorum_arrivals"),
            static_cast<std::uint64_t>(s.min_quorum_arrivals));
  EXPECT_EQ(registry.counter("quorum.active"), 2u);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("quorum.lateness_phases"), std::string::npos);
  EXPECT_NE(json.find("imbar.metrics.v1"), std::string::npos);
}

TEST(QuorumBarrier, RecorderMarksQuorumReleases) {
  // Each quorum release commits a zero-span mark on the fence owner's
  // lane — here t0 owns every fence (it is the only waiter).
  auto recorder = std::make_shared<obs::EpisodeRecorder>(2);
  QuorumOptions opts = flat_options();
  opts.recorder = recorder;
  QuorumBarrier qb(quorum_config(2, 1, 1ms), opts);

  std::atomic<bool> done{false};
  run_threads(2, [&](std::size_t tid) {
    if (tid == 0) {
      for (int g = 0; g < 3; ++g)
        ASSERT_EQ(qb.arrive_and_wait(0), QuorumStatus::kQuorum);
      done.store(true, std::memory_order_release);
    } else {
      spin_until([&] { return done.load(std::memory_order_acquire); });
      for (int g = 0; g < 3; ++g)
        ASSERT_EQ(qb.arrive_and_wait(1), QuorumStatus::kFastForward);
    }
  });
  EXPECT_EQ(recorder->recorded(0), 3u);
  for (const obs::EpisodeRecord& r : recorder->snapshot(0))
    EXPECT_EQ(r.arrive_ns, r.release_ns);  // marks are zero-span
}

TEST(QuorumBarrier, QuarantineAndRestorationRoundTrip) {
  // t2 sits out until the fences quarantine it (quarantine_after = 2
  // consecutive quorum misses), probes back in via await_restoration
  // while the survivors keep phasing strictly (the inner shrank to 2,
  // so their all-arrive completes and the restoration is applied at a
  // *strict* boundary — strict_boundary's restore-fence path), then
  // reconciles. k = 1 keeps every endgame self-releasing: a thread
  // caught alone in a phase quorum-releases on its own budget instead
  // of waiting for peers that already exited.
  constexpr std::size_t kN = 3;
  QuorumOptions opts = flat_options();
  opts.quarantine_after = 2;
  QuorumBarrier qb(quorum_config(kN, 1, 3ms), opts);

  std::atomic<bool> restored{false};
  std::atomic<bool> stop{false};
  run_threads(kN, [&](std::size_t tid) {
    if (tid == 2) {
      // Sit out until quarantined (two quorum releases), then probe.
      spin_until([&] { return qb.state(2) == MemberState::kQuarantined; });
      EXPECT_EQ(qb.arrive_and_wait(2), QuorumStatus::kQuarantined);
      ASSERT_EQ(qb.await_restoration(2), QuorumStatus::kOk);
      restored.store(true, std::memory_order_release);
      stop.store(true, std::memory_order_release);
      // Restored in sync; reconcile anything released since.
      while (qb.arrive_and_wait(2) == QuorumStatus::kFastForward) {}
    } else {
      while (!stop.load(std::memory_order_acquire)) {
        const QuorumStatus s = qb.arrive_and_wait(tid);
        ASSERT_TRUE(s == QuorumStatus::kOk || s == QuorumStatus::kQuorum)
            << to_string(s);
      }
    }
  });

  EXPECT_TRUE(restored.load());
  const QuorumStats s = qb.stats();
  EXPECT_EQ(s.quarantines, 1u);
  EXPECT_EQ(s.restorations, 1u);
  EXPECT_GE(s.quorum_releases, 2u);  // the two that quarantined t2
  EXPECT_EQ(qb.state(2), MemberState::kJoined);
  EXPECT_EQ(qb.active_participants(), kN);

  const MemberAccount a2 = qb.account(2);
  EXPECT_GE(a2.quarantine_skipped, 1u);  // the span settled by restore
  bool saw_quarantine = false, saw_restore = false;
  for (const QuorumEvent& e : qb.events()) {
    if (e.kind == QuorumEventKind::kQuarantine && e.tid == 2)
      saw_quarantine = true;
    if (e.kind == QuorumEventKind::kRestore && e.tid == 2) saw_restore = true;
  }
  EXPECT_TRUE(saw_quarantine);
  EXPECT_TRUE(saw_restore);
  EXPECT_NO_THROW(qb.check_invariants());
}

TEST(QuorumBarrier, RestorationRacesQuorumReleases) {
  // The restore request must land cleanly while release fences are
  // actively running: after t2 is quarantined, t1 keeps sitting out
  // every third phase so t0's budget keeps expiring into quorum fences
  // (k_eff = min(1, active) = 1) the whole time t2 is probing.
  // quarantine_after = 3 and t1's sparse sitting keep t1's lag streak
  // below the threshold, so only t2 (which sits continuously) is ever
  // quarantined.
  constexpr std::size_t kN = 3;
  QuorumOptions opts = flat_options();
  opts.quarantine_after = 3;
  QuorumBarrier qb(quorum_config(kN, 1, 3ms), opts);

  std::atomic<bool> stop{false};
  run_threads(kN, [&](std::size_t tid) {
    if (tid == 2) {
      spin_until([&] { return qb.state(2) == MemberState::kQuarantined; });
      ASSERT_EQ(qb.await_restoration(2), QuorumStatus::kOk);
      stop.store(true, std::memory_order_release);
      // Restored in sync; drain any phases released since.
      while (true) {
        const QuorumStatus s = qb.arrive_and_wait(2);
        if (s != QuorumStatus::kFastForward) break;
      }
    } else if (tid == 1) {
      std::uint64_t g = qb.phase();
      while (!stop.load(std::memory_order_acquire)) {
        if (g % 3 == 0) {
          // Sit this phase out (bounded: bail if stop fires meanwhile).
          spin_until([&] {
            return qb.phase() > g || stop.load(std::memory_order_acquire);
          });
        } else {
          const QuorumStatus s = qb.arrive_and_wait(1);
          ASSERT_NE(s, QuorumStatus::kStalled);
          ASSERT_NE(s, QuorumStatus::kQuarantined);
        }
        g = qb.phase();
      }
      // Reconcile whatever was missed while sitting out.
      while (qb.account(1).arrivals + qb.account(1).missed_phases +
                 qb.account(1).quarantine_skipped <
             qb.phase()) {
        const QuorumStatus s = qb.arrive_and_wait(1);
        if (s != QuorumStatus::kFastForward) break;
      }
    } else {
      while (!stop.load(std::memory_order_acquire)) {
        const QuorumStatus s = qb.arrive_and_wait(0);
        ASSERT_NE(s, QuorumStatus::kStalled);
      }
    }
  });

  // t0 may owe one final arrival (it could have entered a phase right
  // as stop fired and others left); that phase quorum-released on t0's
  // own timeout, so by now everything is quiescent.
  const QuorumStats s = qb.stats();
  EXPECT_EQ(s.quarantines, 1u);
  EXPECT_EQ(s.restorations, 1u);
  EXPECT_GE(s.quorum_releases, 2u);
  EXPECT_EQ(qb.state(2), MemberState::kJoined);
  EXPECT_NO_THROW(qb.check_invariants());
}

TEST(QuorumBarrier, StallBelowQuorumThenReset) {
  // k = 2 with one member absent can never reach quorum, so t0 cycles
  // repair fences until stall_timeout, then everyone sees kStalled
  // until reset() rebuilds and the retried phase releases strictly.
  QuorumOptions opts = flat_options();
  opts.stall_timeout = 50ms;
  QuorumBarrier qb(quorum_config(2, 2, 2ms), opts);

  ASSERT_EQ(qb.arrive_and_wait(0), QuorumStatus::kStalled);
  EXPECT_TRUE(qb.stalled());
  EXPECT_EQ(qb.arrive_and_wait(1), QuorumStatus::kStalled);
  EXPECT_EQ(qb.phase(), 0u);  // the stalled phase never released

  const QuorumStats mid = qb.stats();
  EXPECT_GE(mid.stalls, 1u);
  EXPECT_EQ(mid.quorum_releases, 0u);
  bool saw_stall = false;
  for (const QuorumEvent& e : qb.events())
    if (e.kind == QuorumEventKind::kStall) saw_stall = true;
  EXPECT_TRUE(saw_stall);

  qb.reset();
  EXPECT_FALSE(qb.stalled());
  run_threads(2, [&](std::size_t tid) {
    ASSERT_EQ(qb.arrive_and_wait(tid), QuorumStatus::kOk);
  });
  EXPECT_EQ(qb.phase(), 1u);
  EXPECT_EQ(qb.stats().strict_releases, 1u);
  EXPECT_NO_THROW(qb.check_invariants());
}

// ---- Health state machine + seeded strict-probe determinism ----------

/// Scripted degradation scenario: with k = 1 and flat budgets, t1 sits
/// out exactly `degraded_phases`, t0 quorum-releases each of them, then
/// t1 reconciles and the pair runs strict phases until health recovers.
/// Everything that happens is a function of the phase count — t0 alone
/// drives every release in sequence — so the event trace (kind, phase)
/// must be identical across runs with the same backoff seed.
std::vector<QuorumEvent> run_degradation_script(std::uint64_t seed,
                                                int degraded_phases,
                                                int strict_phases) {
  BarrierConfig cfg = quorum_config(2, 1, 3ms);
  cfg.quorum.hysteresis = 2;  // degrade/restore after 2, critical at 6
  QuorumOptions opts = flat_options();
  opts.backoff_seed = seed;
  QuorumBarrier qb(cfg, opts);

  std::atomic<bool> solo_done{false};
  run_threads(2, [&](std::size_t tid) {
    if (tid == 0) {
      for (int g = 0; g < degraded_phases; ++g)
        EXPECT_EQ(qb.arrive_and_wait(0), QuorumStatus::kQuorum);
      solo_done.store(true, std::memory_order_release);
    } else {
      spin_until([&] { return solo_done.load(std::memory_order_acquire); });
      for (int g = 0; g < degraded_phases; ++g)
        EXPECT_EQ(qb.arrive_and_wait(1), QuorumStatus::kFastForward);
    }
    for (int g = 0; g < strict_phases; ++g)
      EXPECT_EQ(qb.arrive_and_wait(tid), QuorumStatus::kOk);
  });
  qb.check_invariants();
  return qb.events();
}

TEST(QuorumBarrier, HealthHysteresisTransitions) {
  // hysteresis 2 -> degraded after 2 quorum releases, critical after 6,
  // recovered after 2 strict releases. The event trace must show the
  // transitions at exactly those phases, in order.
  const std::vector<QuorumEvent> events = run_degradation_script(42, 7, 3);

  std::vector<QuorumEventKind> health_transitions;
  for (const QuorumEvent& e : events)
    if (e.kind == QuorumEventKind::kDegraded ||
        e.kind == QuorumEventKind::kCritical ||
        e.kind == QuorumEventKind::kRecovered)
      health_transitions.push_back(e.kind);
  ASSERT_EQ(health_transitions.size(), 3u);
  EXPECT_EQ(health_transitions[0], QuorumEventKind::kDegraded);
  EXPECT_EQ(health_transitions[1], QuorumEventKind::kCritical);
  EXPECT_EQ(health_transitions[2], QuorumEventKind::kRecovered);

  for (const QuorumEvent& e : events) {
    if (e.kind == QuorumEventKind::kDegraded) EXPECT_EQ(e.phase, 1u);
    if (e.kind == QuorumEventKind::kCritical) EXPECT_EQ(e.phase, 5u);
    if (e.kind == QuorumEventKind::kRecovered) EXPECT_EQ(e.phase, 8u);
  }

  // Probes were scheduled while degraded (strict-mode retry).
  bool saw_probe = false;
  for (const QuorumEvent& e : events)
    if (e.kind == QuorumEventKind::kProbe) saw_probe = true;
  EXPECT_TRUE(saw_probe);
}

TEST(QuorumBarrier, SeededProbeScheduleIsReproducible) {
  // The strict-probe gaps draw from the seeded ExponentialBackoff
  // (stream = participants): identical seeds must yield byte-identical
  // degradation traces — kinds, phases, tids and arrival counts — run
  // to run. This is the retry-of-strict determinism contract the chaos
  // campaigns build on.
  const std::vector<QuorumEvent> a = run_degradation_script(0xD5EEDULL, 9, 3);
  const std::vector<QuorumEvent> b = run_degradation_script(0xD5EEDULL, 9, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].phase, b[i].phase) << "event " << i;
    EXPECT_EQ(a[i].arrived, b[i].arrived) << "event " << i;
    // tid is the fence/boundary owner; every event here happens at a
    // quorum fence owned by the sole waiter t0 — except kRecovered,
    // whose strict-boundary owner is whichever thread won the ledger
    // CAS, so it is excluded from the determinism contract.
    if (a[i].kind != QuorumEventKind::kRecovered)
      EXPECT_EQ(a[i].tid, b[i].tid) << "event " << i;
  }
}

TEST(QuorumBarrier, ComposesOverTreeKinds) {
  // The decorator has zero per-kind code: the same tail scenario runs
  // over a tree barrier (dissemination, not release-counted) purely
  // through the factory.
  QuorumBarrier qb(
      quorum_config(4, 3, 10ms, BarrierKind::kDissemination), flat_options());
  std::atomic<bool> solo_done{false};
  run_threads(4, [&](std::size_t tid) {
    if (tid == 3) {
      spin_until([&] { return solo_done.load(std::memory_order_acquire); });
      for (int g = 0; g < 2; ++g)
        ASSERT_EQ(qb.arrive_and_wait(3), QuorumStatus::kFastForward);
    } else {
      for (int g = 0; g < 2; ++g)
        ASSERT_EQ(qb.arrive_and_wait(tid), QuorumStatus::kQuorum);
      if (tid == 0) solo_done.store(true, std::memory_order_release);
    }
    ASSERT_EQ(qb.arrive_and_wait(tid), QuorumStatus::kOk);
  });
  const QuorumStats s = qb.stats();
  EXPECT_EQ(s.quorum_releases, 2u);
  EXPECT_EQ(s.strict_releases, 1u);
  EXPECT_EQ(s.min_quorum_arrivals, 3u);
  EXPECT_NO_THROW(qb.check_invariants());
}

TEST(QuorumBarrier, ValidationAndAccessors) {
  // Invalid configs are refused at construction (through the factory's
  // validation), bad tids at the call sites.
  BarrierConfig bad_k = quorum_config(4, 5, 1ms);  // k > participants
  EXPECT_THROW(QuorumBarrier{bad_k}, std::invalid_argument);
  BarrierConfig bad_budget = quorum_config(4, 2, -1ms);
  EXPECT_THROW(QuorumBarrier{bad_budget}, std::invalid_argument);

  QuorumBarrier qb(quorum_config(4, 3, 1ms), flat_options());
  EXPECT_EQ(qb.participants(), 4u);
  EXPECT_EQ(qb.active_participants(), 4u);
  EXPECT_EQ(qb.effective_quorum(), 3u);
  EXPECT_EQ(qb.phase(), 0u);
  EXPECT_FALSE(qb.stalled());
  EXPECT_EQ(qb.state(0), MemberState::kJoined);
  EXPECT_THROW(qb.arrive_and_wait(4), std::invalid_argument);
  EXPECT_THROW((void)qb.account(4), std::invalid_argument);
  EXPECT_THROW((void)qb.state(4), std::invalid_argument);
  EXPECT_NO_THROW(qb.check_invariants());  // quiescent at phase 0
}

}  // namespace
}  // namespace imbar::robust
