// sim::QuorumModel: the event-driven k-of-n quorum barrier. The model
// is a pure function of its work callback, so every test here pins
// exact closed-form expectations — releases, latencies, ledgers — and
// the acceptance differential maps the strict-vs-quorum frontier the
// real barrier trades on: quorum p99 pinned to the deadline budget
// while strict p99 tracks the straggler tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/quorum_model.hpp"
#include "util/prng.hpp"

namespace imbar::sim {
namespace {

constexpr double kTol = 1e-9;

TEST(QuorumModel, StrictReleasesAtLastArrival) {
  QuorumModelConfig cfg;
  cfg.procs = 4;
  cfg.phases = 3;
  cfg.quorum = 0;  // strict-only
  const QuorumModelResult r = run_quorum_model(
      cfg, [](std::uint64_t, std::size_t proc) {
        return 10.0 * static_cast<double>(proc + 1);
      });

  EXPECT_EQ(r.strict_releases, 3u);
  EXPECT_EQ(r.quorum_releases, 0u);
  EXPECT_EQ(r.missed_phases, 0u);
  EXPECT_EQ(r.late_arrivals, 0u);
  EXPECT_NEAR(r.completeness, 1.0, kTol);
  ASSERT_EQ(r.records.size(), 3u);
  for (const QuorumPhaseRecord& rec : r.records) {
    EXPECT_TRUE(rec.strict);
    EXPECT_EQ(rec.arrived, 4u);
    EXPECT_NEAR(rec.latency(), 40.0, kTol);  // slowest proc
  }
  EXPECT_NEAR(r.makespan, 120.0, kTol);
}

TEST(QuorumModel, ZeroBudgetReleasesAtKthArrival) {
  QuorumModelConfig cfg;
  cfg.procs = 4;
  cfg.phases = 1;
  cfg.quorum = 2;
  cfg.deadline_budget = 0.0;  // release the instant the quorum forms
  const QuorumModelResult r = run_quorum_model(
      cfg, [](std::uint64_t, std::size_t proc) {
        return 10.0 * static_cast<double>(proc + 1);
      });

  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_FALSE(r.records[0].strict);
  EXPECT_EQ(r.records[0].arrived, 2u);
  EXPECT_NEAR(r.records[0].latency(), 20.0, kTol);  // 2nd arrival
  EXPECT_EQ(r.quorum_releases, 1u);
  EXPECT_NEAR(r.completeness, 0.5, kTol);  // 2 of 4 attended
}

TEST(QuorumModel, DeadlineHoldsQuorumReleaseUntilBudget) {
  // The quorum forms at t=10 but the budget is 100: the release must
  // wait for the deadline, not fire at the k-th arrival.
  QuorumModelConfig cfg;
  cfg.procs = 2;
  cfg.phases = 1;
  cfg.quorum = 1;
  cfg.deadline_budget = 100.0;
  const QuorumModelResult r = run_quorum_model(
      cfg, [](std::uint64_t, std::size_t proc) {
        return proc == 0 ? 10.0 : 200.0;
      });

  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_FALSE(r.records[0].strict);
  EXPECT_EQ(r.records[0].arrived, 1u);
  EXPECT_NEAR(r.records[0].release, 100.0, kTol);  // exactly the budget
}

TEST(QuorumModel, EarlyFullHouseBeatsTheDeadline) {
  // All procs in before the budget: strict release immediately, the
  // pending deadline event must be a no-op.
  QuorumModelConfig cfg;
  cfg.procs = 3;
  cfg.phases = 2;
  cfg.quorum = 2;
  cfg.deadline_budget = 1000.0;
  const QuorumModelResult r = run_quorum_model(
      cfg, [](std::uint64_t, std::size_t) { return 5.0; });

  EXPECT_EQ(r.strict_releases, 2u);
  EXPECT_EQ(r.quorum_releases, 0u);
  EXPECT_NEAR(r.makespan, 10.0, kTol);
  EXPECT_NEAR(r.completeness, 1.0, kTol);
}

TEST(QuorumModel, LateArrivalsFastForwardAndReconcile) {
  // proc 1 is ~2.4 budgets slow: it keeps landing behind the ledger,
  // fast-forwards across the missed phases and rejoins — the model
  // must keep the ledger identities intact throughout.
  QuorumModelConfig cfg;
  cfg.procs = 2;
  cfg.phases = 10;
  cfg.quorum = 1;
  cfg.deadline_budget = 5.0;
  const QuorumModelResult r = run_quorum_model(
      cfg, [](std::uint64_t, std::size_t proc) {
        return proc == 0 ? 1.0 : 12.0;
      });

  EXPECT_EQ(r.strict_releases + r.quorum_releases, 10u);
  ASSERT_EQ(r.records.size(), 10u);
  EXPECT_GE(r.late_arrivals, 1u);
  std::uint64_t by_proc = 0;
  for (const std::uint64_t m : r.missed_by_proc) by_proc += m;
  EXPECT_EQ(r.missed_phases, by_proc);
  EXPECT_EQ(r.missed_by_proc[0], 0u);
  EXPECT_GE(r.missed_by_proc[1], 1u);
  // proc 0 attends everything; proc 1 is behind for the whole run.
  EXPECT_GE(r.completeness, 0.5);
  EXPECT_LT(r.completeness, 1.0);
}

TEST(QuorumModel, AcceptanceFrontierPersistentStraggler) {
  // The PR's acceptance differential, in closed form: one persistent
  // straggler (proc 0: 1000 us, peers: 15 us). Strict mode hands every
  // phase to the straggler — p99 == 1000 — while quorum mode (k = n-1,
  // budget 60) releases every phase at exactly the budget: p99 == 60,
  // paying completeness (proc 0 stops attending) instead of latency.
  constexpr std::size_t kProcs = 8;
  constexpr std::uint64_t kPhases = 200;
  const auto work = [](std::uint64_t, std::size_t proc) {
    return proc == 0 ? 1000.0 : 15.0;
  };

  QuorumModelConfig strict_cfg;
  strict_cfg.procs = kProcs;
  strict_cfg.phases = kPhases;
  strict_cfg.quorum = 0;
  const QuorumModelResult strict = run_quorum_model(strict_cfg, work);

  QuorumModelConfig quorum_cfg = strict_cfg;
  quorum_cfg.quorum = kProcs - 1;
  quorum_cfg.deadline_budget = 60.0;
  const QuorumModelResult quorum = run_quorum_model(quorum_cfg, work);

  // Strict: every phase waits out the tail.
  EXPECT_EQ(strict.strict_releases, kPhases);
  EXPECT_NEAR(strict.latency_percentile(0.99), 1000.0, kTol);
  EXPECT_NEAR(strict.latency_percentile(0.50), 1000.0, kTol);
  EXPECT_NEAR(strict.completeness, 1.0, kTol);

  // Quorum: every phase releases at the deadline, no phase ever pays
  // the tail, and the books record exactly who fell behind.
  EXPECT_EQ(quorum.quorum_releases, kPhases);
  EXPECT_EQ(quorum.strict_releases, 0u);
  EXPECT_NEAR(quorum.latency_percentile(0.99), 60.0, kTol);
  EXPECT_NEAR(quorum.latency_percentile(0.50), 60.0, kTol);
  EXPECT_NEAR(quorum.makespan, 60.0 * static_cast<double>(kPhases), kTol);
  EXPECT_GT(quorum.completeness, 0.8);
  EXPECT_LT(quorum.completeness, 0.95);  // proc 0's share is gone
  EXPECT_GE(quorum.missed_by_proc[0], 150u);
  for (std::size_t proc = 1; proc < kProcs; ++proc)
    EXPECT_EQ(quorum.missed_by_proc[proc], 0u);
}

TEST(QuorumModel, SeededHeavyTailDifferentialIsDeterministic) {
  // Heavy-tailed work drawn from a pure (phase, proc)-keyed hash: the
  // quorum run must cut the tail out of p99 relative to strict, and —
  // being a pure function — replay identically.
  constexpr std::size_t kProcs = 8;
  constexpr std::uint64_t kPhases = 300;
  const auto work = [](std::uint64_t phase, std::size_t proc) {
    SplitMix64 h(0xC0FFEEULL ^ (phase * 0x9E3779B97F4A7C15ULL) ^
                 (static_cast<std::uint64_t>(proc) << 32));
    const std::uint64_t draw = h.next();
    const double base = 20.0 + static_cast<double>(draw % 11);
    return (draw % 100) < 1 ? base + 200.0 : base;  // 1% stragglers
  };

  QuorumModelConfig strict_cfg;
  strict_cfg.procs = kProcs;
  strict_cfg.phases = kPhases;
  const QuorumModelResult strict = run_quorum_model(strict_cfg, work);

  QuorumModelConfig quorum_cfg = strict_cfg;
  quorum_cfg.quorum = kProcs - 2;  // tolerate two concurrent stragglers
  quorum_cfg.deadline_budget = 50.0;
  const QuorumModelResult quorum = run_quorum_model(quorum_cfg, work);

  EXPECT_GE(strict.latency_percentile(0.99), 200.0);  // the tail shows
  EXPECT_NEAR(strict.completeness, 1.0, kTol);
  EXPECT_LT(quorum.latency_percentile(0.99),
            strict.latency_percentile(0.99) / 2.0);
  // Median phase never pays more than the budget (tail-free phases
  // release strictly, even earlier).
  EXPECT_LE(quorum.latency_percentile(0.50), 50.0 + kTol);
  EXPECT_GT(quorum.completeness, 0.8);

  const QuorumModelResult replay = run_quorum_model(quorum_cfg, work);
  EXPECT_EQ(replay.quorum_releases, quorum.quorum_releases);
  EXPECT_EQ(replay.missed_phases, quorum.missed_phases);
  EXPECT_NEAR(replay.makespan, quorum.makespan, kTol);
}

TEST(QuorumModel, ComposesOnACallerOwnedEngine) {
  Engine engine;
  bool foreign_ran = false;
  engine.schedule(1.0, [&] { foreign_ran = true; });

  QuorumModelConfig cfg;
  cfg.procs = 2;
  cfg.phases = 4;
  QuorumModel model(engine, cfg,
                    [](std::uint64_t, std::size_t) { return 3.0; });
  model.start();
  engine.run();

  EXPECT_TRUE(foreign_ran);
  EXPECT_TRUE(model.done());
  const QuorumModelResult r = model.result();
  EXPECT_EQ(r.records.size(), 4u);
  EXPECT_EQ(r.strict_releases, 4u);
}

TEST(QuorumModel, Validation) {
  Engine engine;
  QuorumModelConfig cfg;
  cfg.procs = 0;
  const QuorumWorkFn work = [](std::uint64_t, std::size_t) { return 1.0; };
  EXPECT_THROW(QuorumModel(engine, cfg, work), std::invalid_argument);
  cfg.procs = 2;
  EXPECT_THROW(QuorumModel(engine, cfg, nullptr), std::invalid_argument);
  cfg.deadline_budget = -1.0;
  EXPECT_THROW(QuorumModel(engine, cfg, work), std::invalid_argument);
}

}  // namespace
}  // namespace imbar::sim
