// Rank statistics: the machinery behind the Figure 5 predictability
// experiment.
#include <gtest/gtest.h>

#include <vector>

#include "stats/rank.hpp"
#include "util/prng.hpp"

namespace imbar {
namespace {

TEST(Ranks, SimpleOrdering) {
  const auto r = ranks(std::vector<double>{30, 10, 20});
  EXPECT_EQ(r, (std::vector<double>{3, 1, 2}));
}

TEST(Ranks, TiesGetAverageRank) {
  const auto r = ranks(std::vector<double>{1, 2, 2, 3});
  EXPECT_EQ(r, (std::vector<double>{1, 2.5, 2.5, 4}));
}

TEST(Ranks, AllEqual) {
  const auto r = ranks(std::vector<double>{5, 5, 5});
  EXPECT_EQ(r, (std::vector<double>{2, 2, 2}));
}

TEST(Ranks, Empty) { EXPECT_TRUE(ranks(std::vector<double>{}).empty()); }

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4}, y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  std::vector<double> x{1, 2, 3, 4}, y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  std::vector<double> x{1, 1, 1}, y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{1.0}, std::vector<double>{2.0}), 0.0);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 8, 27, 64, 125};  // x^3: nonlinear, monotone
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, IndependentIsNearZero) {
  Xoshiro256 rng(12);
  std::vector<double> x(2000), y(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  EXPECT_NEAR(spearman(x, y), 0.0, 0.06);
}

TEST(Spearman, MismatchedSizesAreZero) {
  EXPECT_DOUBLE_EQ(
      spearman(std::vector<double>{1, 2}, std::vector<double>{1, 2, 3}), 0.0);
}

TEST(RankAutocorrelation, LagZeroIsOne) {
  std::vector<std::vector<double>> rows{{1, 2, 3}, {3, 2, 1}};
  EXPECT_DOUBLE_EQ(rank_autocorrelation(rows, 0), 1.0);
}

TEST(RankAutocorrelation, PersistentOrderIsHigh) {
  // Every iteration preserves the processor ordering + small noise.
  Xoshiro256 rng(4);
  std::vector<std::vector<double>> rows(50, std::vector<double>(20));
  for (auto& row : rows)
    for (std::size_t p = 0; p < row.size(); ++p)
      row[p] = static_cast<double>(p) + 0.01 * rng.uniform();
  EXPECT_GT(rank_autocorrelation(rows, 1), 0.99);
  EXPECT_GT(rank_autocorrelation(rows, 10), 0.99);
}

TEST(RankAutocorrelation, IidOrderIsLow) {
  Xoshiro256 rng(8);
  std::vector<std::vector<double>> rows(200, std::vector<double>(30));
  for (auto& row : rows)
    for (auto& v : row) v = rng.uniform();
  EXPECT_NEAR(rank_autocorrelation(rows, 1), 0.0, 0.1);
}

TEST(RankAutocorrelation, TooFewRowsIsZero) {
  std::vector<std::vector<double>> rows{{1, 2, 3}};
  EXPECT_DOUBLE_EQ(rank_autocorrelation(rows, 1), 0.0);
}

}  // namespace
}  // namespace imbar
