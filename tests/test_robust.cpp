// RobustBarrier: deadlines, broken-barrier contagion, abandon, reset.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/facade.hpp"
#include "robust/fault_plan.hpp"
#include "robust/robust_barrier.hpp"
#include "util/spin_wait.hpp"

#include "barrier_test_support.hpp"

namespace imbar::robust {
namespace {

using test::run_threads;
using namespace std::chrono_literals;

BarrierConfig tree_config(std::size_t p, std::size_t degree = 2) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = p;
  cfg.degree = degree;
  return cfg;
}

TEST(WaitStatusStrings, RoundTrip) {
  EXPECT_STREQ(to_string(WaitStatus::kReady), "ready");
  EXPECT_STREQ(to_string(WaitStatus::kTimeout), "timeout");
  EXPECT_STREQ(to_string(WaitStatus::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(BarrierStatus::kOk), "ok");
  EXPECT_STREQ(to_string(BarrierStatus::kTimeout), "timeout");
  EXPECT_STREQ(to_string(BarrierStatus::kBroken), "broken");
}

TEST(SpinUntil, UnboundedContextNeverTimesOut) {
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(5ms);
    flag.store(true, std::memory_order_release);
  });
  const WaitStatus s = spin_until(
      [&] { return flag.load(std::memory_order_acquire); }, WaitContext{});
  setter.join();
  EXPECT_EQ(s, WaitStatus::kReady);
}

TEST(SpinUntil, DeadlineFires) {
  const auto t0 = std::chrono::steady_clock::now();
  const WaitStatus s = spin_until_for([] { return false; }, 20ms);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(s, WaitStatus::kTimeout);
  EXPECT_GE(waited, 20ms);
  EXPECT_LT(waited, 2s);  // escalation must not badly overshoot
}

TEST(SpinUntil, CancelFlagWins) {
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(5ms);
    cancel.store(true, std::memory_order_release);
  });
  const WaitStatus s = spin_until_for([] { return false; }, 10s, &cancel);
  canceller.join();
  EXPECT_EQ(s, WaitStatus::kCancelled);
}

TEST(SpinUntil, ReleaseBeatsTimeoutOnFinalRecheck) {
  // A predicate that flips true exactly when the deadline fires must be
  // reported kReady, never kTimeout.
  int calls = 0;
  const WaitStatus s = spin_until_for([&] { return ++calls > 1; }, 0ns);
  EXPECT_EQ(s, WaitStatus::kReady);
}

TEST(InnerBarriers, DeadlineWaitCompletesWhenAllArrive) {
  // Every kind's arrive_and_wait_until returns kReady in a full cohort.
  for (auto kind : {BarrierKind::kCentral, BarrierKind::kCombiningTree,
                    BarrierKind::kMcsTree, BarrierKind::kDynamicPlacement,
                    BarrierKind::kDissemination, BarrierKind::kTournament,
                    BarrierKind::kMcsLocalSpin, BarrierKind::kAdaptive}) {
    BarrierConfig cfg;
    cfg.kind = kind;
    cfg.participants = 4;
    cfg.degree = 2;
    auto b = make_barrier(cfg);
    std::atomic<int> not_ready{0};
    run_threads(4, [&](std::size_t tid) {
      for (int i = 0; i < 50; ++i)
        if (b->arrive_and_wait_for(tid, 10s) != WaitStatus::kReady)
          not_ready.fetch_add(1);
    });
    EXPECT_EQ(not_ready.load(), 0) << to_string(kind);
  }
}

TEST(RobustBarrier, CompletesLikeAPlainBarrier) {
  RobustBarrier b(tree_config(4));
  std::atomic<int> bad{0};
  run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 100; ++i)
      if (b.arrive_and_wait_for(tid, 10s) != BarrierStatus::kOk)
        bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_FALSE(b.broken());
  EXPECT_GE(b.counters().episodes, 100u);
}

TEST(RobustBarrier, TimeoutBreaksAndPeersSeeBroken) {
  // 3 of 4 arrive; the missing one never does. Exactly one waiter may
  // report kTimeout (the breaker); the others kBroken — all within the
  // deadline budget rather than hanging.
  RobustBarrier b(tree_config(4));
  std::atomic<int> timeouts{0}, brokens{0}, oks{0};
  run_threads(3, [&](std::size_t tid) {
    switch (b.arrive_and_wait_for(tid, 50ms)) {
      case BarrierStatus::kOk: oks.fetch_add(1); break;
      case BarrierStatus::kTimeout: timeouts.fetch_add(1); break;
      case BarrierStatus::kBroken: brokens.fetch_add(1); break;
    }
  });
  EXPECT_EQ(oks.load(), 0);
  EXPECT_EQ(timeouts.load(), 1);
  EXPECT_EQ(brokens.load(), 2);
  EXPECT_TRUE(b.broken());
  // The breaker's stall report names the missing participant.
  ASSERT_TRUE(b.has_stall());
  const StallReport r = b.last_stall();
  ASSERT_EQ(r.missing.size(), 1u);
  EXPECT_EQ(r.missing[0], 3u);
}

TEST(RobustBarrier, AbandonKillsEpisodeForAllSurvivors) {
  // Acceptance: one participant dies -> every remaining participant
  // returns kBroken (not kOk) within the deadline; after reset() the
  // survivors complete 10 further episodes.
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kVictim = 2;
  RobustBarrier b(tree_config(kThreads));

  std::atomic<int> non_ok{0}, ok{0};
  std::vector<std::chrono::steady_clock::duration> waited(kThreads);
  run_threads(kThreads, [&](std::size_t tid) {
    if (tid == kVictim) {
      std::this_thread::sleep_for(10ms);  // peers are already waiting
      b.arrive_and_abandon(tid);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const BarrierStatus s = b.arrive_and_wait_for(tid, 10s);
    waited[tid] = std::chrono::steady_clock::now() - t0;
    (s == BarrierStatus::kOk ? ok : non_ok).fetch_add(1);
  });
  EXPECT_EQ(ok.load(), 0);
  EXPECT_EQ(non_ok.load(), static_cast<int>(kThreads) - 1);
  for (std::size_t t = 0; t < kThreads; ++t) {
    if (t != kVictim) {
      EXPECT_LT(waited[t], 10s) << "survivor " << t
                                << " ran to its deadline instead of being "
                                   "released by the contagious break";
    }
  }
  EXPECT_FALSE(b.is_active(kVictim));
  EXPECT_EQ(b.active_participants(), kThreads - 1);

  // Recovery: rebuild over the survivors, then 10 clean episodes.
  b.reset();
  EXPECT_FALSE(b.broken());
  EXPECT_EQ(b.generation(), 1u);
  std::atomic<int> post_bad{0};
  run_threads(kThreads, [&](std::size_t tid) {
    if (tid == kVictim) return;  // dead tids stay out
    for (int i = 0; i < 10; ++i)
      if (b.arrive_and_wait_for(tid, 10s) != BarrierStatus::kOk)
        post_bad.fetch_add(1);
  });
  EXPECT_EQ(post_bad.load(), 0);
}

TEST(RobustBarrier, BrokenStaysBrokenUntilReset) {
  RobustBarrier b(tree_config(2));
  b.arrive_and_abandon(0);
  EXPECT_TRUE(b.broken());
  // Entries short-circuit without touching the torn inner barrier.
  EXPECT_EQ(b.arrive_and_wait_for(1, 10s), BarrierStatus::kBroken);
  EXPECT_EQ(b.arrive_and_wait_for(1, 10s), BarrierStatus::kBroken);
  b.reset();
  // A 1-participant barrier trivially completes.
  EXPECT_EQ(b.arrive_and_wait_for(1, 10s), BarrierStatus::kOk);
}

TEST(RobustBarrier, UsageErrorsThrow) {
  RobustBarrier b(tree_config(2));
  EXPECT_THROW(b.arrive_and_wait_for(2, 1ms), std::invalid_argument);
  EXPECT_THROW(b.arrive_and_abandon(9), std::invalid_argument);
  EXPECT_THROW(RobustBarrier(tree_config(0)), std::invalid_argument);
  b.arrive_and_abandon(0);
  EXPECT_THROW(b.arrive_and_wait_for(0, 1ms), std::logic_error);
  b.arrive_and_abandon(1);
  EXPECT_THROW(b.reset(), std::logic_error);  // nobody left
}

TEST(RobustBarrier, DegreeClampsAsCohortShrinks) {
  // degree-4 tree over 5 participants; after 3 abandon, the rebuilt
  // inner barrier must clamp its degree to the 2 survivors.
  RobustBarrier b(tree_config(5, 4));
  b.arrive_and_abandon(0);
  b.arrive_and_abandon(2);
  b.arrive_and_abandon(4);
  b.reset();
  std::atomic<int> bad{0};
  run_threads(5, [&](std::size_t tid) {
    if (tid % 2 == 0) return;  // dead
    for (int i = 0; i < 20; ++i)
      if (b.arrive_and_wait_for(tid, 10s) != BarrierStatus::kOk)
        bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(RobustBarrier, MissingReportsLaggards) {
  RobustBarrier b(tree_config(3));
  EXPECT_TRUE(b.missing().empty());  // nobody has entered yet
  std::thread waiter(
      [&] { EXPECT_EQ(b.arrive_and_wait_for(0, 1s), BarrierStatus::kTimeout); });
  // Give tid 0 time to enter, then the watchdog view shows 1 and 2.
  spin_until_for([&] { return b.missing().size() == 2; }, 900ms);
  const auto m = b.missing();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], 1u);
  EXPECT_EQ(m[1], 2u);
  waiter.join();
}

TEST(RobustBarrier, DefaultTimeoutFromOptions) {
  RobustOptions opts;
  opts.default_timeout = 30ms;
  RobustBarrier b(tree_config(2), opts);
  // One participant alone: the options deadline bounds the plain call.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(b.arrive_and_wait(0), BarrierStatus::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(Facade, RecommendRobustBarrierBuildsWorkingCohort) {
  RobustOptions opts;
  opts.default_timeout = 10s;
  auto b = recommend_robust_barrier(4, /*sigma_us=*/50.0, /*tc_us=*/1.0,
                                    /*predictable=*/true, opts);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->participants(), 4u);
  std::atomic<int> bad{0};
  run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 50; ++i)
      if (b->arrive_and_wait(tid) != BarrierStatus::kOk) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(FaultPlan, IsDeterministicAndValidates) {
  FaultSpec spec;
  spec.straggler_prob = 0.2;
  spec.straggler_mean_us = 100.0;
  spec.lost_wakeup_prob = 0.1;
  spec.lost_wakeup_mean_us = 50.0;
  spec.deaths = 2;
  const FaultPlan a = FaultPlan::make(42, 8, 50, spec);
  const FaultPlan b = FaultPlan::make(42, 8, 50, spec);
  for (std::size_t i = 0; i < 50; ++i)
    for (std::size_t p = 0; p < 8; ++p) {
      EXPECT_EQ(a.straggler_delay_us(i, p), b.straggler_delay_us(i, p));
      EXPECT_EQ(a.lost_wakeup_delay_us(i, p), b.lost_wakeup_delay_us(i, p));
    }
  ASSERT_EQ(a.deaths().size(), 2u);
  EXPECT_EQ(a.deaths()[0].proc, b.deaths()[0].proc);
  EXPECT_NE(a.deaths()[0].proc, a.deaths()[1].proc);

  FaultSpec bad;
  bad.deaths = 8;
  EXPECT_THROW(FaultPlan::make(1, 8, 50, bad), std::invalid_argument);
  bad.deaths = 0;
  bad.straggler_prob = 1.5;
  EXPECT_THROW(FaultPlan::make(1, 8, 50, bad), std::invalid_argument);
  EXPECT_THROW(FaultPlan::make(1, 0, 50, FaultSpec{}), std::invalid_argument);
}

}  // namespace
}  // namespace imbar::robust
