// Randomized robustness stress: every real barrier kind under a
// RobustBarrier with jittered arrivals and an abandoning participant,
// 100 episodes per kind. Verifies the broken-barrier status contract:
//
//   * before the abandon, every episode completes kOk for everyone;
//   * the abandon episode is uniformly non-kOk for the survivors (the
//     abandoner never contributes, so nobody can complete it);
//   * after reset(), the shrunken cohort completes every remaining
//     episode kOk.
//
// Registered under the `stress` ctest label (ctest -L stress).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "robust/fault_harness.hpp"
#include "robust/fault_plan.hpp"
#include "robust/robust_barrier.hpp"
#include "util/prng.hpp"

#include "barrier_test_support.hpp"

namespace imbar::robust {
namespace {

using test::run_threads;
using namespace std::chrono_literals;

struct StressCase {
  const char* name;
  BarrierKind kind;
  std::size_t threads;
  std::size_t degree;
};

class RobustStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(RobustStress, AbandonMidRunThenRecover) {
  const auto& param = GetParam();
  BarrierConfig cfg;
  cfg.kind = param.kind;
  cfg.participants = param.threads;
  cfg.degree = param.degree;
  RobustBarrier barrier(cfg);

  constexpr std::size_t kEpisodes = 100;
  const std::size_t victim = param.threads / 2;
  const std::size_t death_at = 41;  // mid-run, after plenty of clean episodes

  // statuses[episode][tid], -1 = did not run.
  std::vector<std::vector<int>> statuses(
      kEpisodes, std::vector<int>(param.threads, -1));

  std::mutex mu;
  std::condition_variable cv;
  std::size_t waiting = 0;
  bool resumed = false;
  // Threads done with the pre-death episode. The victim abandons only
  // once everyone has *returned* from episode death_at-1: an abandon
  // racing with a still-propagating release can tear that release for
  // laggards on cooperative-wakeup barriers (MCS local-spin) — see
  // docs/robustness.md. Quiescing keeps per-episode statuses exact.
  std::atomic<std::size_t> past_pre_death{0};

  run_threads(param.threads, [&](std::size_t tid) {
    Xoshiro256 rng = Xoshiro256::substream(2026, tid);
    for (std::size_t ep = 0; ep < kEpisodes; ++ep) {
      if (tid == victim && ep == death_at) {
        while (past_pre_death.load(std::memory_order_acquire) <
               param.threads) {
          std::this_thread::yield();
        }
        barrier.arrive_and_abandon(tid);
        return;
      }
      // Jittered arrivals: the load-imbalance regime.
      if (rng.below(4) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(rng.below(300)));
      const BarrierStatus s = barrier.arrive_and_wait_for(tid, 30s);
      statuses[ep][tid] = static_cast<int>(s);
      if (ep + 1 == death_at)
        past_pre_death.fetch_add(1, std::memory_order_acq_rel);
      if (s != BarrierStatus::kOk) {
        // Survivors rendezvous off-barrier; the last one resets.
        std::unique_lock<std::mutex> lk(mu);
        ++waiting;
        if (waiting == barrier.active_participants()) {
          barrier.reset();
          resumed = true;
          cv.notify_all();
        } else {
          cv.wait(lk, [&] { return resumed; });
        }
      }
    }
  });

  EXPECT_TRUE(resumed);
  EXPECT_EQ(barrier.active_participants(), param.threads - 1);
  EXPECT_FALSE(barrier.broken());

  for (std::size_t ep = 0; ep < kEpisodes; ++ep)
    for (std::size_t tid = 0; tid < param.threads; ++tid) {
      const int s = statuses[ep][tid];
      if (tid == victim) {
        if (ep < death_at)
          EXPECT_EQ(s, static_cast<int>(BarrierStatus::kOk))
              << param.name << " victim episode " << ep;
        else
          EXPECT_EQ(s, -1) << param.name << " victim ran after death";
        continue;
      }
      if (ep == death_at) {
        // Abandon-driven break: homogeneous — nobody completes.
        EXPECT_TRUE(s == static_cast<int>(BarrierStatus::kTimeout) ||
                    s == static_cast<int>(BarrierStatus::kBroken))
            << param.name << " tid " << tid << " episode " << ep
            << " got status " << s;
      } else {
        EXPECT_EQ(s, static_cast<int>(BarrierStatus::kOk))
            << param.name << " tid " << tid << " episode " << ep;
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, RobustStress,
    ::testing::Values(
        StressCase{"central", BarrierKind::kCentral, 5, 0},
        StressCase{"combining", BarrierKind::kCombiningTree, 6, 2},
        StressCase{"mcs", BarrierKind::kMcsTree, 6, 3},
        StressCase{"dynamic", BarrierKind::kDynamicPlacement, 5, 2},
        StressCase{"dissemination", BarrierKind::kDissemination, 5, 0},
        StressCase{"tournament", BarrierKind::kTournament, 6, 0},
        StressCase{"mcs_local", BarrierKind::kMcsLocalSpin, 5, 0},
        StressCase{"adaptive", BarrierKind::kAdaptive, 5, 0}),
    [](const auto& info) { return info.param.name; });

TEST(RobustStressHarness, FaultPlanDrivenEpisodesStayConsistent) {
  // The packaged harness run end-to-end: stragglers + one death over
  // 100 episodes. The harness classifies episodes itself; here the
  // contract is that counts reconcile and the cohort survives.
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCombiningTree;
  cfg.participants = 6;
  cfg.degree = 2;
  RobustBarrier barrier(cfg);

  FaultSpec spec;
  spec.straggler_prob = 0.05;
  spec.straggler_mean_us = 300.0;
  spec.deaths = 1;
  spec.death_after = 20;
  const FaultPlan plan = FaultPlan::make(99, 6, 100, spec);

  HarnessOptions opts;
  opts.iterations = 100;
  opts.timeout = 30s;  // only the death can break the barrier
  const HarnessResult r = run_fault_harness(barrier, plan, opts);

  EXPECT_EQ(r.survivors, 5u);
  EXPECT_EQ(r.resets, 1u);
  EXPECT_EQ(r.broken_episodes, 1u);
  EXPECT_EQ(r.mixed_episodes, 0u);  // abandon-driven: homogeneous
  EXPECT_EQ(r.timeout_statuses, 0u);
  EXPECT_EQ(r.broken_statuses, 5u);  // the 5 survivors of the death episode
  // Every other (episode, live tid) cell completed: the victim's
  // pre-death episodes plus the survivors' 99 non-death episodes.
  const std::size_t death_at = plan.deaths()[0].iteration;
  EXPECT_EQ(r.ok_statuses, static_cast<std::uint64_t>(death_at) + 5u * 99u);
}

}  // namespace
}  // namespace imbar::robust
