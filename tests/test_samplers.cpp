// Random-variate samplers: moment matching across shapes (TEST_P sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "dist/samplers.hpp"
#include "stats/summary.hpp"
#include "util/prng.hpp"

namespace imbar {
namespace {

struct SamplerCase {
  const char* name;
  std::function<std::unique_ptr<Sampler>()> make;
  double tol_mean;
  double tol_sd;
};

class SamplerMoments : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(SamplerMoments, EmpiricalMomentsMatchDeclared) {
  const auto& param = GetParam();
  auto s = param.make();
  Xoshiro256 rng(1234);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(s->sample(rng));
  EXPECT_NEAR(rs.mean(), s->mean(), param.tol_mean) << param.name;
  EXPECT_NEAR(rs.stddev(), s->stddev(), param.tol_sd) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SamplerMoments,
    ::testing::Values(
        SamplerCase{"normal", [] { return make_normal(10.0, 2.0); }, 0.05, 0.05},
        SamplerCase{"normal_wide",
                    [] { return make_normal(0.0, 50.0); }, 0.8, 0.8},
        SamplerCase{"exponential",
                    [] { return std::make_unique<ExponentialSampler>(5.0); },
                    0.1, 0.1},
        SamplerCase{"uniform",
                    [] { return std::make_unique<UniformSampler>(2.0, 6.0); },
                    0.05, 0.05},
        SamplerCase{"lognormal",
                    [] { return std::make_unique<LogNormalSampler>(8.0, 3.0); },
                    0.15, 0.25},
        SamplerCase{"constant", [] { return make_constant(4.5); }, 1e-12, 1e-12}),
    [](const auto& info) { return info.param.name; });

TEST(NormalSampler, ZeroSigmaIsDegenerate) {
  NormalSampler s(7.0, 0.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(s.sample(rng), 7.0);
}

TEST(NormalSampler, IsGaussianByKurtosis) {
  NormalSampler s(0.0, 1.0);
  Xoshiro256 rng(2);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(s.sample(rng));
  EXPECT_NEAR(rs.skewness(), 0.0, 0.03);
  EXPECT_NEAR(rs.excess_kurtosis(), 0.0, 0.06);
}

TEST(ExponentialSampler, IsPositiveAndSkewed) {
  ExponentialSampler s(3.0);
  Xoshiro256 rng(3);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) {
    const double x = s.sample(rng);
    ASSERT_GT(x, 0.0);
    rs.add(x);
  }
  EXPECT_NEAR(rs.skewness(), 2.0, 0.15);
}

TEST(UniformSampler, StaysInRange) {
  UniformSampler s(-1.0, 1.0);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100000; ++i) {
    const double x = s.sample(rng);
    ASSERT_GE(x, -1.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(LogNormalSampler, IsPositive) {
  LogNormalSampler s(5.0, 10.0);  // heavy tail (cv = 2)
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) ASSERT_GT(s.sample(rng), 0.0);
}

TEST(LogNormalSampler, RejectsNonPositiveMean) {
  EXPECT_THROW(LogNormalSampler(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormalSampler(-2.0, 1.0), std::invalid_argument);
}

TEST(LogNormalSampler, ZeroSigmaIsDegenerate) {
  LogNormalSampler s(6.0, 0.0);
  Xoshiro256 rng(6);
  EXPECT_DOUBLE_EQ(s.sample(rng), 6.0);
}

TEST(Samplers, DeterministicGivenRngState) {
  auto a = make_normal(0.0, 1.0);
  auto b = make_normal(0.0, 1.0);
  Xoshiro256 r1(9), r2(9);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a->sample(r1), b->sample(r2));
}

}  // namespace
}  // namespace imbar
