// Conformance-style properties of the barrier virtualization service:
// no release before all (or quorum-k) arrivals, quorum-debt accounting,
// deterministic cancellation, slot starvation-freedom, and the
// completion-log audit. Runs under `ctest -L service`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/barrier_service.hpp"
#include "service/completion_log.hpp"
#include "service/service_metrics.hpp"
#include "service/slot_scheduler.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/micro_harness.hpp"

namespace imbar::service {
namespace {

BarrierService::Options small_opts(std::size_t shards = 2,
                                   std::size_t slots = 8,
                                   std::size_t workers = 2,
                                   bool record_log = false) {
  BarrierService::Options o;
  o.shards = shards;
  o.slots = slots;
  o.workers = workers;
  o.record_log = record_log;
  return o;
}

TEST(ServiceTypes, CompletionKindNames) {
  EXPECT_STREQ(to_string(CompletionKind::kPending), "pending");
  EXPECT_STREQ(to_string(CompletionKind::kReleased), "released");
  EXPECT_STREQ(to_string(CompletionKind::kQuorum), "quorum");
  EXPECT_STREQ(to_string(CompletionKind::kLate), "late");
  EXPECT_STREQ(to_string(CompletionKind::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(CompletionKind::kRejected), "rejected");
}

TEST(ServiceTypes, DefaultHandleIsInvalid) {
  ArrivalHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.done());
  EXPECT_EQ(h.kind(), CompletionKind::kPending);
}

TEST(SlotSchedulerTest, GrantsSmallestFirstAndFifoReady) {
  SlotScheduler s(10, 3);
  EXPECT_EQ(s.capacity(), 3u);
  EXPECT_EQ(s.acquire_free().value(), 10u);
  EXPECT_EQ(s.acquire_free().value(), 11u);
  EXPECT_EQ(s.acquire_free().value(), 12u);
  EXPECT_FALSE(s.acquire_free().has_value());
  // Release out of order; grants stay smallest-first.
  s.release(12);
  s.release(10);
  EXPECT_EQ(s.acquire_free().value(), 10u);
  EXPECT_EQ(s.acquire_free().value(), 12u);
  EXPECT_THROW(s.release(9), std::invalid_argument);

  s.enqueue_ready(7);
  s.enqueue_ready(8);
  s.enqueue_ready(7);
  EXPECT_EQ(s.ready_depth(), 3u);
  EXPECT_EQ(s.pop_ready().value(), 7u);
  EXPECT_EQ(s.pop_ready().value(), 8u);
  EXPECT_EQ(s.pop_ready().value(), 7u);
  EXPECT_FALSE(s.pop_ready().has_value());

  s.mark_idle(1);
  s.mark_idle(2);
  s.unmark_idle(1);
  EXPECT_TRUE(s.has_idle());
  EXPECT_EQ(s.pop_idle(), 2u);
  EXPECT_FALSE(s.has_idle());
}

TEST(ServiceOptions, SlotCountNormalizesToShardMultiple) {
  BarrierService svc(small_opts(/*shards=*/4, /*slots=*/10, /*workers=*/1));
  EXPECT_EQ(svc.options().slots, 8u);  // 2 per shard
  BarrierService svc2(small_opts(/*shards=*/4, /*slots=*/2, /*workers=*/1));
  EXPECT_EQ(svc2.options().slots, 4u);  // at least 1 per shard
  EXPECT_THROW(BarrierService(small_opts(/*shards=*/0)),
               std::invalid_argument);
}

TEST(ServiceRelease, NoReleaseBeforeAllArrive) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 4;
  svc.create_group(1, go);
  std::vector<ArrivalHandle> hs;
  for (std::uint32_t m = 0; m < 3; ++m)
    hs.push_back(svc.arrive_with_handle(1, m));
  svc.drain();
  for (const auto& h : hs) {
    EXPECT_TRUE(h.valid());
    EXPECT_FALSE(h.done()) << "released before all arrivals";
  }
  EXPECT_EQ(svc.counters().releases_strict, 0u);

  hs.push_back(svc.arrive_with_handle(1, 3));
  svc.drain();
  for (const auto& h : hs) {
    ASSERT_TRUE(h.done());
    EXPECT_EQ(h.kind(), CompletionKind::kReleased);
    EXPECT_EQ(h.phase(), 0u);
  }
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.releases_strict, 1u);
  EXPECT_EQ(c.completions_strict, 4u);
}

TEST(ServiceRelease, PhasesAdvanceAndDuplicatesCarryOver) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 2;
  std::atomic<std::uint64_t> phases_seen{0};
  go.on_complete = [&](const Completion& c) {
    phases_seen.fetch_add(c.phase, std::memory_order_relaxed);
  };
  svc.create_group(9, go);
  // Member 0 arrives twice before member 1 arrives at all: the second
  // arrival buffers for phase 1.
  svc.arrive(9, 0);
  svc.arrive(9, 0);
  svc.arrive(9, 1);
  svc.arrive(9, 1);
  svc.drain();
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.releases_strict, 2u);
  EXPECT_EQ(c.completions_strict, 4u);
  // Phase 0 twice (0+0) + phase 1 twice (1+1) = 2.
  EXPECT_EQ(phases_seen.load(), 2u);
}

TEST(ServiceQuorum, NoReleaseBeforeQuorumK) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 4;
  go.quorum.quorum = 3;  // budget 0: release the moment k arrive
  svc.create_group(2, go);
  auto h0 = svc.arrive_with_handle(2, 0);
  auto h1 = svc.arrive_with_handle(2, 1);
  svc.drain();
  EXPECT_FALSE(h0.done());
  EXPECT_FALSE(h1.done());
  EXPECT_EQ(svc.counters().releases_quorum, 0u);

  auto h2 = svc.arrive_with_handle(2, 2);
  svc.drain();
  EXPECT_EQ(h0.kind(), CompletionKind::kQuorum);
  EXPECT_EQ(h1.kind(), CompletionKind::kQuorum);
  EXPECT_EQ(h2.kind(), CompletionKind::kQuorum);
  ServiceCounters c = svc.counters();
  EXPECT_EQ(c.releases_quorum, 1u);
  EXPECT_EQ(c.completions_quorum, 3u);
  EXPECT_EQ(c.owed_outstanding, 1u);

  // The straggler reconciles as kLate and settles the ledger.
  auto h3 = svc.arrive_with_handle(2, 3);
  svc.drain();
  EXPECT_EQ(h3.kind(), CompletionKind::kLate);
  c = svc.counters();
  EXPECT_EQ(c.completions_late, 1u);
  EXPECT_EQ(c.owed_outstanding, 0u);
  // Identity: strict + quorum + late + owed == released phases * n.
  EXPECT_EQ(c.completions_strict + c.completions_quorum +
                c.completions_late + c.owed_outstanding,
            4u);
}

TEST(ServiceQuorum, DeadlineBudgetHoldsReleaseUntilPoll) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 3;
  go.quorum.quorum = 2;
  go.quorum.deadline_budget = std::chrono::milliseconds(50);
  svc.create_group(3, go);
  auto h0 = svc.arrive_with_handle(3, 0);
  auto h1 = svc.arrive_with_handle(3, 1);
  svc.drain();
  // Quorum formed, but the budget (measured from first arrival) is not
  // spent: the phase must still be pending.
  EXPECT_FALSE(h0.done());
  EXPECT_FALSE(h1.done());

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  svc.poll();
  svc.drain();
  EXPECT_EQ(h0.kind(), CompletionKind::kQuorum);
  EXPECT_EQ(h1.kind(), CompletionKind::kQuorum);
  EXPECT_EQ(svc.counters().releases_quorum, 1u);

  auto h2 = svc.arrive_with_handle(3, 2);
  svc.drain();
  EXPECT_EQ(h2.kind(), CompletionKind::kLate);
  EXPECT_EQ(svc.counters().owed_outstanding, 0u);
}

TEST(ServiceRejects, InvalidOpsAreRejectedNotDropped) {
  BarrierService svc(small_opts());
  auto h = svc.arrive_with_handle(42, 0);  // no such group
  svc.drain();
  EXPECT_EQ(h.kind(), CompletionKind::kRejected);

  GroupOptions go;
  go.participants = 2;
  svc.create_group(5, go);
  auto h2 = svc.arrive_with_handle(5, 7);  // member out of range
  svc.drain();
  EXPECT_EQ(h2.kind(), CompletionKind::kRejected);

  svc.create_group(5, go);  // duplicate live id
  GroupOptions bad;
  bad.participants = 0;  // invalid
  svc.create_group(6, bad);
  GroupOptions badq;
  badq.participants = 2;
  badq.quorum.quorum = 3;  // quorum > n
  svc.create_group(7, badq);
  svc.destroy_group(99);  // unknown
  svc.drain();
  EXPECT_EQ(svc.counters().rejected, 6u);
  EXPECT_EQ(svc.counters().groups_created, 1u);
}

TEST(ServiceDestroy, CancelsPendingArrivalsDeterministically) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 3;
  svc.create_group(8, go);
  auto h0 = svc.arrive_with_handle(8, 0);
  auto h1 = svc.arrive_with_handle(8, 1);
  svc.destroy_group(8);
  svc.drain();
  EXPECT_EQ(h0.kind(), CompletionKind::kCancelled);
  EXPECT_EQ(h1.kind(), CompletionKind::kCancelled);
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.cancelled, 2u);
  EXPECT_EQ(c.groups_destroyed, 1u);
  // The id is reusable after destroy (new epoch).
  svc.create_group(8, go);
  auto h2 = svc.arrive_with_handle(8, 0);
  svc.arrive(8, 1);
  svc.arrive(8, 2);
  svc.drain();
  EXPECT_EQ(h2.kind(), CompletionKind::kReleased);
}

TEST(ServiceSlots, StarvedGroupsAreServedFifo) {
  // One shard, one slot, three groups: the slot must rotate in request
  // order — no group starves.
  auto o = small_opts(/*shards=*/1, /*slots=*/1, /*workers=*/2,
                      /*record_log=*/true);
  BarrierService svc(o);
  GroupOptions go;
  go.participants = 2;
  for (GroupId g = 0; g < 3; ++g) svc.create_group(g, go);
  svc.arrive(0, 0);  // g0 takes the slot
  svc.arrive(1, 0);  // g1 queues
  svc.arrive(2, 0);  // g2 queues behind g1
  svc.drain();
  ServiceCounters c = svc.counters();
  EXPECT_EQ(c.ready_enqueues, 2u);
  EXPECT_EQ(c.releases_strict, 0u);

  svc.arrive(0, 1);  // g0 releases; slot must hand to g1, then g2
  svc.arrive(1, 1);
  svc.arrive(2, 1);
  svc.drain();
  c = svc.counters();
  EXPECT_EQ(c.releases_strict, 3u);
  EXPECT_GE(c.slot_parks, 2u);

  const std::string log = svc.completion_log();
  const LogAudit audit = audit_completion_log(log);
  EXPECT_TRUE(audit.violations.empty())
      << "first violation: "
      << (audit.violations.empty() ? "" : audit.violations.front());
  // FIFO: g1 queued and granted before g2.
  EXPECT_LT(log.find("W g1"), log.find("W g2"));
  const auto g1_grant = log.find("G g1");
  const auto g2_grant = log.find("G g2");
  ASSERT_NE(g1_grant, std::string::npos);
  ASSERT_NE(g2_grant, std::string::npos);
  EXPECT_LT(g1_grant, g2_grant);
}

TEST(ServiceSlots, IdleHoldersAreEvictedForNewArrivals) {
  auto o = small_opts(/*shards=*/1, /*slots=*/1, /*workers=*/1,
                      /*record_log=*/true);
  BarrierService svc(o);
  GroupOptions go;
  go.participants = 1;
  svc.create_group(0, go);
  svc.arrive(0, 0);  // g0 releases instantly, then idles holding the slot
  svc.drain();
  EXPECT_EQ(svc.counters().slot_evictions, 0u);

  svc.create_group(1, go);
  svc.arrive(1, 0);  // must evict idle g0, not starve
  svc.drain();
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.releases_strict, 2u);
  EXPECT_EQ(c.slot_evictions, 1u);
  EXPECT_NE(svc.completion_log().find("E g0"), std::string::npos);
}

TEST(ServiceSlots, DestroyWhileQueuedNeitherLeaksSlotNorStarves) {
  // Starvation edge: a group destroyed while sitting in the shard's
  // FIFO ready queue must drop out cleanly — its backlog cancels, the
  // slot is NOT granted to the corpse, and the next queued group is
  // served as if the destroyed one had never queued.
  auto o = small_opts(/*shards=*/1, /*slots=*/1, /*workers=*/2,
                      /*record_log=*/true);
  BarrierService svc(o);
  GroupOptions go;
  go.participants = 2;
  for (GroupId g = 0; g < 3; ++g) svc.create_group(g, go);
  svc.arrive(0, 0);  // g0 takes the slot
  svc.arrive(1, 0);  // g1 queues
  svc.arrive(2, 0);  // g2 queues behind g1
  svc.drain();
  EXPECT_EQ(svc.counters().ready_enqueues, 2u);

  svc.destroy_group(1);  // g1 dies while queued
  svc.arrive(0, 1);      // g0 releases; the slot must skip g1, serve g2
  svc.arrive(2, 1);
  svc.drain();
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.releases_strict, 2u);  // g0 and g2; g1 never released
  EXPECT_EQ(c.cancelled, 1u);        // g1's queued arrival
  EXPECT_EQ(c.groups_destroyed, 1u);

  const std::string log = svc.completion_log();
  const LogAudit audit = audit_completion_log(log);
  EXPECT_TRUE(audit.violations.empty())
      << "first violation: "
      << (audit.violations.empty() ? "" : audit.violations.front());
  EXPECT_EQ(log.find("G g1"), std::string::npos)
      << "slot granted to a destroyed group";
  EXPECT_NE(log.find("G g2"), std::string::npos) << "next waiter starved";

  // The slot was returned, not leaked: a fresh group can still get it.
  GroupOptions solo;
  solo.participants = 1;
  svc.create_group(3, solo);
  svc.arrive(3, 0);
  // Deadline-budgeted teardown: a leaked slot would wedge this drain,
  // and the diagnostic names the stuck shard instead of timing out
  // the whole suite.
  const auto stuck = svc.drain_for(std::chrono::seconds(30));
  ASSERT_FALSE(stuck.has_value())
      << "teardown stuck with " << stuck->pending_ops << " pending op(s)";
  EXPECT_EQ(svc.counters().releases_strict, 3u);
}

TEST(ServiceBulk, ArriveAllReleasesOnePhase) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 5;
  std::atomic<std::uint64_t> completions{0};
  go.on_complete = [&](const Completion& c) {
    if (c.kind == CompletionKind::kReleased)
      completions.fetch_add(1, std::memory_order_relaxed);
  };
  svc.create_group(4, go);
  svc.arrive_all(4);
  svc.arrive_all(4);
  svc.drain();
  EXPECT_EQ(svc.counters().releases_strict, 2u);
  EXPECT_EQ(completions.load(), 10u);
}

TEST(ServiceAudit, MixedWorkloadLogIsConsistent) {
  auto o = small_opts(/*shards=*/4, /*slots=*/4, /*workers=*/2,
                      /*record_log=*/true);
  BarrierService svc(o);
  for (GroupId g = 0; g < 24; ++g) {
    GroupOptions go;
    go.participants = 1 + static_cast<std::uint32_t>(g % 4);
    go.group_class = (g % 2) ? "odd" : "even";
    if (g % 5 == 0 && go.participants > 1) go.quorum.quorum = 1;
    svc.create_group(g, go);
  }
  for (int round = 0; round < 3; ++round) {
    for (GroupId g = 0; g < 24; ++g) {
      if (g % 5 == 0) {
        svc.arrive(g, 0);  // quorum groups: only member 0 shows up
      } else {
        svc.arrive_all(g);
      }
    }
    if (round == 1) {
      svc.destroy_group(7);
      GroupOptions go;
      go.participants = 2;
      svc.create_group(7, go);
    }
  }
  svc.drain();
  const LogAudit audit = audit_completion_log(svc.completion_log());
  EXPECT_TRUE(audit.violations.empty())
      << "first violation: "
      << (audit.violations.empty() ? "" : audit.violations.front());
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(audit.creates, c.groups_created);
  EXPECT_EQ(audit.destroys, c.groups_destroyed);
  EXPECT_EQ(audit.releases_strict, c.releases_strict);
  EXPECT_EQ(audit.releases_quorum, c.releases_quorum);
  EXPECT_EQ(audit.lates, c.completions_late);
}

TEST(ServiceAudit, EpochRegressionIsFlagged) {
  // Regression guard for the per-group epoch-monotonicity check: a
  // recovery bug that re-created a group under a stale epoch would
  // alias its (group, epoch, phase) completions with the previous
  // incarnation's, so the audit must refuse non-increasing epochs.
  const std::string ok =
      "s0 C g1 e1 n2 q0 class=a\n"
      "s0 D g1 e1 c0\n"
      "s0 C g1 e2 n2 q0 class=a\n"
      "s0 D g1 e2 c0\n";
  EXPECT_TRUE(audit_completion_log(ok).violations.empty());

  const std::string repeated =
      "s0 C g1 e1 n2 q0 class=a\n"
      "s0 D g1 e1 c0\n"
      "s0 C g1 e1 n2 q0 class=a\n";
  const LogAudit rep = audit_completion_log(repeated);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations.front().find("epoch not strictly increasing"),
            std::string::npos)
      << rep.violations.front();

  const std::string regressed =
      "s0 C g2 e5 n2 q0 class=a\n"
      "s0 D g2 e5 c0\n"
      "s0 C g2 e3 n2 q0 class=a\n";
  const LogAudit reg = audit_completion_log(regressed);
  ASSERT_EQ(reg.violations.size(), 1u);
  EXPECT_NE(reg.violations.front().find("epoch not strictly increasing"),
            std::string::npos)
      << reg.violations.front();
}

TEST(ServiceStats, PerClassAccountingMatches) {
  BarrierService svc(small_opts(/*shards=*/2, /*slots=*/8, /*workers=*/2));
  GroupOptions a;
  a.participants = 3;
  a.group_class = "alpha";
  GroupOptions b;
  b.participants = 2;
  b.group_class = "beta";
  svc.create_group(0, a);
  svc.create_group(1, a);
  svc.create_group(2, b);
  svc.arrive_all(0);
  svc.arrive_all(1);
  svc.arrive_all(2);
  svc.drain();
  const auto stats = svc.class_stats();
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(stats[0].name, "alpha");
  EXPECT_EQ(stats[0].groups, 2u);
  EXPECT_EQ(stats[0].participants, 6u);
  EXPECT_EQ(stats[0].stats.count(), 6u);
  EXPECT_EQ(stats[0].latency_us.total() + stats[0].latency_us.underflow() +
                stats[0].latency_us.overflow(),
            6u);
  EXPECT_EQ(stats[1].name, "beta");
  EXPECT_EQ(stats[1].groups, 1u);
  EXPECT_EQ(stats[1].stats.count(), 2u);
}

TEST(ServiceMetrics, FoldPublishesCountersAndLabeledFamilies) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 2;
  go.group_class = "fold";
  svc.create_group(0, go);
  svc.arrive_all(0);
  svc.drain();

  obs::MetricsRegistry reg;
  fold_service_metrics(svc, reg);
  const std::string snap = reg.snapshot_json();
  const auto doc = obs::json::parse(snap);
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->has_number("service.v1.arrivals"));
  EXPECT_EQ(counters->find("service.v1.arrivals")->number, 2.0);
  EXPECT_EQ(counters->find("service.v1.releases_strict")->number, 1.0);
  const auto* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->find("service.v1.latency_us{class=fold}"), nullptr);
  EXPECT_EQ(reg.labels("service.v1.latency_us"),
            std::vector<std::string>{"class=fold"});
}

TEST(ServiceJson, SoakDocumentValidates) {
  BarrierService svc(small_opts());
  GroupOptions go;
  go.participants = 4;
  go.group_class = "doc";
  go.quorum.quorum = 2;
  svc.create_group(0, go);
  svc.arrive(0, 0);
  svc.arrive(0, 1);  // quorum release, 2 owed
  svc.drain();

  const std::string doc = service_soak_json(
      "test_soak", obs::BenchRow{obs::BenchCell::num("groups", 1)}, svc);
  const auto parsed = obs::json::parse(doc);
  EXPECT_NO_THROW(obs::validate_bench_json(parsed));
  const auto* service = parsed.find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->find("groups")->number, 1.0);
  EXPECT_EQ(service->find("logical_participants")->number, 4.0);
  EXPECT_EQ(service->find("releases_quorum")->number, 1.0);
  const auto* classes = service->find("classes");
  ASSERT_NE(classes, nullptr);
  ASSERT_EQ(classes->array.size(), 1u);
  EXPECT_EQ(classes->array[0].find("class")->string, "doc");
  EXPECT_EQ(classes->array[0].find("count")->number, 2.0);
}

TEST(ServiceLifecycle, DrainForNamesTheStuckShard) {
  // A wedged completion callback must turn a bounded drain into a
  // per-shard diagnostic, not a suite-wide hang: drain_for() gives up
  // after its budget and reports where the backlog is queued.
  BarrierService svc(small_opts(/*shards=*/2, /*slots=*/4, /*workers=*/1));
  std::atomic<bool> unblock{false};
  GroupOptions go;
  go.participants = 1;
  go.on_complete = [&](const Completion&) {
    while (!unblock.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  svc.create_group(0, go);
  svc.arrive(0, 0);  // releases instantly; the callback wedges the worker
  svc.arrive(0, 0);  // backlog behind the wedged op
  const auto diag = svc.drain_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(diag.has_value());
  EXPECT_GE(diag->pending_ops, 1u);
  EXPECT_EQ(diag->shard_inbox_depths.size(), 2u);

  unblock.store(true, std::memory_order_release);
  EXPECT_FALSE(svc.drain_for(std::chrono::seconds(60)).has_value());
  EXPECT_EQ(svc.counters().releases_strict, 2u);
}

TEST(ServiceLifecycle, DestructorDrainsOutstandingOps) {
  std::atomic<std::uint64_t> completions{0};
  {
    BarrierService svc(small_opts(/*shards=*/2, /*slots=*/4, /*workers=*/2));
    GroupOptions go;
    go.participants = 2;
    go.on_complete = [&](const Completion&) {
      completions.fetch_add(1, std::memory_order_relaxed);
    };
    for (GroupId g = 0; g < 16; ++g) svc.create_group(g, go);
    for (GroupId g = 0; g < 16; ++g) svc.arrive_all(g);
    // No drain: the destructor must flush everything.
  }
  EXPECT_EQ(completions.load(), 32u);
}

}  // namespace
}  // namespace imbar::service
