// Differential determinism for the virtualization service, exec-style
// (tests/test_exec_determinism.cpp is the pattern): one scripted
// single-driver workload, replayed against worker pools of size 1, 2
// and 4, must produce byte-identical merged completion logs. Every
// scheduling freedom the pool has — which worker drains a shard, how
// drain batches split — must stay invisible to the event order.
// Runs under `ctest -L service`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "service/barrier_service.hpp"
#include "service/completion_log.hpp"

namespace imbar::service {
namespace {

struct ScriptResult {
  std::string log;
  ServiceCounters counters;
};

// The scripted workload: group churn, bulk and partial arrivals,
// quorum releases with straggler reconciliation, slot starvation
// (4 shards x 1 slot for 40 groups), destroy/recreate mid-stream.
// Everything is submitted from this one thread; no deadline budgets,
// so no decision depends on the clock.
ScriptResult run_script(std::size_t workers) {
  BarrierService::Options o;
  o.shards = 4;
  o.slots = 4;  // one physical slot per shard — heavy multiplexing
  o.workers = workers;
  o.batch = 8;  // small batches: exercise drain requeue paths
  o.record_log = true;
  BarrierService svc(o);

  constexpr GroupId kGroups = 40;
  constexpr std::uint64_t kRounds = 4;

  auto options_for = [](GroupId g) {
    GroupOptions go;
    go.participants = 1 + static_cast<std::uint32_t>(g % 5);
    go.group_class = "c" + std::to_string(g % 3);
    if (g % 4 == 0 && go.participants > 1)
      go.quorum.quorum = (go.participants + 1) / 2;
    return go;
  };
  auto quorum_of = [&](GroupId g) {
    const GroupOptions go = options_for(g);
    return static_cast<std::uint32_t>(go.quorum.quorum);
  };

  for (GroupId g = 0; g < kGroups; ++g) svc.create_group(g, options_for(g));

  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (GroupId g = 0; g < kGroups; ++g) {
      const std::uint32_t q = quorum_of(g);
      if (q > 0) {
        for (std::uint32_t m = 0; m < q; ++m) svc.arrive(g, m);
      } else {
        svc.arrive_all(g);
      }
    }
    // Mid-stream churn: destroy and immediately recreate every 7th
    // group, interleaved with the arrival stream (cancellations and
    // epoch bumps must land identically for every worker count).
    if (round % 2 == 1) {
      for (GroupId g = 0; g < kGroups; g += 7) {
        svc.destroy_group(g);
        svc.create_group(g, options_for(g));
      }
    }
    // Invalid traffic mixed in: must reject identically.
    svc.arrive(kGroups + 1000, 0);
    svc.arrive(1, 200);
  }

  // Reconcile quorum stragglers: destroyed-and-recreated groups lost
  // their debt ledgers, so lates are whatever the fresh epochs owe —
  // still a pure function of the script.
  for (GroupId g = 0; g < kGroups; ++g) {
    const std::uint32_t q = quorum_of(g);
    if (q == 0) continue;
    const GroupOptions go = options_for(g);
    for (std::uint32_t m = q; m < go.participants; ++m)
      for (std::uint64_t r = 0; r < kRounds; ++r) svc.arrive(g, m);
  }

  for (GroupId g = 0; g < kGroups; ++g) svc.destroy_group(g);
  svc.drain();
  return ScriptResult{svc.completion_log(), svc.counters()};
}

TEST(ServiceDeterminism, MergedLogByteIdenticalAcrossWorkerCounts) {
  const ScriptResult base = run_script(1);
  ASSERT_FALSE(base.log.empty());
  // Sanity: the scripted log itself satisfies the safety contract.
  const LogAudit audit = audit_completion_log(base.log);
  EXPECT_TRUE(audit.violations.empty())
      << "first violation: "
      << (audit.violations.empty() ? "" : audit.violations.front());
  EXPECT_GT(audit.releases_strict, 0u);
  EXPECT_GT(audit.releases_quorum, 0u);
  EXPECT_GT(audit.destroys, 0u);

  for (const std::size_t workers : {2u, 4u}) {
    const ScriptResult alt = run_script(workers);
    EXPECT_EQ(base.log, alt.log)
        << "completion log diverged at workers=" << workers;
    EXPECT_EQ(base.counters.arrivals, alt.counters.arrivals);
    EXPECT_EQ(base.counters.releases_strict, alt.counters.releases_strict);
    EXPECT_EQ(base.counters.releases_quorum, alt.counters.releases_quorum);
    EXPECT_EQ(base.counters.completions_late, alt.counters.completions_late);
    EXPECT_EQ(base.counters.cancelled, alt.counters.cancelled);
    EXPECT_EQ(base.counters.rejected, alt.counters.rejected);
    EXPECT_EQ(base.counters.slot_grants, alt.counters.slot_grants);
    EXPECT_EQ(base.counters.slot_evictions, alt.counters.slot_evictions);
    EXPECT_EQ(base.counters.ready_enqueues, alt.counters.ready_enqueues);
  }
}

TEST(ServiceDeterminism, RunsAreRepeatable) {
  // Same worker count twice: the log is a pure function of the script,
  // not of one lucky schedule.
  const ScriptResult a = run_script(2);
  const ScriptResult b = run_script(2);
  EXPECT_EQ(a.log, b.log);
}

}  // namespace
}  // namespace imbar::service
