// BarrierService crash recovery: snapshot round-trips through live
// state, replay rebuilds counters and ledgers exactly, corrupt
// snapshots fall back to full replay, both resettle policies settle
// in-flight arrivals correctly, and the recovery metrics/telemetry
// exporters emit what the schema validator demands. Runs under
// `ctest -L recovery`.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/micro_harness.hpp"
#include "service/barrier_service.hpp"
#include "service/completion_log.hpp"
#include "service/service_metrics.hpp"

namespace imbar::service {
namespace {

struct Durable {
  std::shared_ptr<FaultyMemBackend> journal =
      std::make_shared<FaultyMemBackend>();
  std::shared_ptr<MemSnapshotStore> snapshots =
      std::make_shared<MemSnapshotStore>();

  BarrierService::Options options(std::uint64_t snapshot_interval = 0,
                                  std::size_t shards = 2,
                                  std::size_t workers = 2) const {
    BarrierService::Options o;
    o.shards = shards;
    o.slots = 8;
    o.workers = workers;
    o.record_log = true;
    o.durability.journal = journal;
    o.durability.snapshots = snapshots;
    o.durability.snapshot_interval = snapshot_interval;
    return o;
  }
};

/// Thread-safe completion tally (shard workers deliver concurrently).
struct Tally {
  std::mutex mu;
  std::vector<Completion> all;
  CompletionFn sink() {
    return [this](const Completion& c) {
      std::lock_guard<std::mutex> lk(mu);
      all.push_back(c);
    };
  }
  std::size_t count(CompletionKind k) {
    std::lock_guard<std::mutex> lk(mu);
    std::size_t n = 0;
    for (const Completion& c : all)
      if (c.kind == k) ++n;
    return n;
  }
};

/// Accumulates per-shard log lines across incarnations and merges them
/// the way CompletionLog::merged() would — what a crash harness audits.
struct LogCapture {
  std::vector<std::vector<std::string>> lines;
  explicit LogCapture(std::size_t shards) : lines(shards) {}
  void capture(const BarrierService& svc) {
    for (std::size_t s = 0; s < lines.size(); ++s) {
      const std::vector<std::string> seg = svc.shard_log_lines(s);
      lines[s].insert(lines[s].end(), seg.begin(), seg.end());
    }
  }
  [[nodiscard]] std::string merged() const {
    std::string out;
    for (const auto& shard : lines)
      for (const std::string& l : shard) {
        out += l;
        out += '\n';
      }
    return out;
  }
};

bool counters_equal(const ServiceCounters& a, const ServiceCounters& b) {
  return a.groups_created == b.groups_created &&
         a.groups_destroyed == b.groups_destroyed &&
         a.arrivals == b.arrivals &&
         a.completions_strict == b.completions_strict &&
         a.completions_quorum == b.completions_quorum &&
         a.completions_late == b.completions_late &&
         a.cancelled == b.cancelled && a.rejected == b.rejected &&
         a.releases_strict == b.releases_strict &&
         a.releases_quorum == b.releases_quorum &&
         a.slot_grants == b.slot_grants &&
         a.slot_evictions == b.slot_evictions &&
         a.slot_parks == b.slot_parks &&
         a.ready_enqueues == b.ready_enqueues && a.polls == b.polls &&
         a.owed_outstanding == b.owed_outstanding;
}

/// A mixed workload: strict groups released twice, one quorum group
/// left with owed stragglers, one group left mid-phase.
void run_prefix_workload(BarrierService& svc, const CompletionFn& sink) {
  for (GroupId g = 0; g < 6; ++g) {
    GroupOptions o;
    o.participants = 3;
    o.group_class = g == 0 ? "quorum" : "strict";
    if (g == 0) {
      o.quorum.quorum = 2;
      o.quorum.deadline_budget = std::chrono::nanoseconds(0);
    }
    o.on_complete = sink;
    svc.create_group(g, o);
  }
  for (std::size_t round = 0; round < 2; ++round)
    for (GroupId g = 1; g < 6; ++g) svc.arrive_all(g);
  // Quorum group: members 0,1 release each phase; member 2 goes owed.
  for (std::size_t round = 0; round < 2; ++round) {
    svc.arrive(0, 0);
    svc.arrive(0, 1);
  }
  // Leave group 5 mid-phase: two of three arrived, in flight at crash.
  svc.arrive(5, 0);
  svc.arrive(5, 1);
}

TEST(ServiceRecoveryTest, PreconditionsEnforced) {
  {
    BarrierService svc;  // no durability configured
    EXPECT_THROW(svc.recover(), std::logic_error);
    EXPECT_FALSE(svc.last_recovery().performed);
  }
  Durable d;
  {
    BarrierService svc(d.options());
    svc.recover();
    EXPECT_THROW(svc.recover(), std::logic_error);  // twice
  }
  {
    BarrierService svc(d.options());
    GroupOptions o;
    o.participants = 1;
    svc.create_group(1, o);
    EXPECT_THROW(svc.recover(), std::logic_error);  // op already submitted
    svc.drain();
  }
}

TEST(ServiceRecoveryTest, ReplayRebuildsCountersAndLedgersExactly) {
  Durable d;
  Tally tally;
  LogCapture logs(2);
  ServiceCounters before;
  std::uint64_t deliveries_before = 0;
  {
    BarrierService svc(d.options());
    run_prefix_workload(svc, tally.sink());
    svc.drain();
    before = svc.counters();
    logs.capture(svc);
  }
  d.journal->crash();
  deliveries_before = tally.all.size();

  BarrierService svc(d.options());
  RecoverOptions ro;
  ro.on_complete = tally.sink();
  const RecoveryReport& rep = svc.recover(ro);
  EXPECT_TRUE(rep.performed);
  EXPECT_EQ(rep.journal_generation, 2u);
  EXPECT_GT(rep.replayed_ops, 0u);
  EXPECT_EQ(rep.truncated_records, 0u);
  // Quiet replay: counters identical, but nothing was re-delivered and
  // no log lines were re-emitted.
  EXPECT_TRUE(counters_equal(before, svc.counters()));
  EXPECT_EQ(tally.all.size(), deliveries_before);
  EXPECT_TRUE(svc.completion_log().empty());

  // The restored state is live: finish group 5's phase, reconcile the
  // quorum straggler, destroy everything.
  svc.arrive(5, 2);
  svc.arrive(0, 2);
  svc.arrive(0, 2);
  svc.drain();
  EXPECT_EQ(svc.counters().owed_outstanding, 0u);
  for (GroupId g = 0; g < 6; ++g) svc.destroy_group(g);
  svc.drain();
  const ServiceCounters after = svc.counters();
  EXPECT_EQ(after.groups_destroyed, 6u);
  EXPECT_EQ(after.cancelled, 0u);  // every waiter settled before destroy
  // Audit the merged pre-crash + post-recovery log, the artifact the
  // crash-consistency claim is stated over.
  logs.capture(svc);
  const LogAudit audit = audit_completion_log(logs.merged());
  EXPECT_TRUE(audit.violations.empty())
      << (audit.violations.empty() ? "" : audit.violations.front());
  EXPECT_EQ(audit.creates, 6u);
  EXPECT_EQ(audit.destroys, 6u);
}

TEST(ServiceRecoveryTest, SnapshotsBoundReplay) {
  Durable d;
  Tally tally;
  ServiceCounters before;
  {
    BarrierService svc(d.options(/*snapshot_interval=*/4));
    run_prefix_workload(svc, tally.sink());
    svc.drain();
    before = svc.counters();
  }
  d.journal->crash();

  BarrierService svc(d.options(/*snapshot_interval=*/4));
  const RecoveryReport& rep = svc.recover();
  EXPECT_GT(rep.snapshots_loaded, 0u);
  EXPECT_EQ(rep.snapshot_fallbacks, 0u);
  EXPECT_GT(rep.skipped_ops, 0u);  // the snapshot covered a prefix
  EXPECT_TRUE(counters_equal(before, svc.counters()));
  svc.drain();
}

TEST(ServiceRecoveryTest, CorruptSnapshotFallsBackToFullReplay) {
  Durable d;
  Tally tally;
  ServiceCounters before;
  {
    BarrierService svc(d.options(/*snapshot_interval=*/4));
    run_prefix_workload(svc, tally.sink());
    svc.drain();
    before = svc.counters();
  }
  d.journal->crash();
  // Rot one byte in every shard's snapshot blob: all must be detected.
  for (std::size_t s = 0; s < 2; ++s) {
    std::string& blob = d.snapshots->blob(s);
    if (!blob.empty()) blob[blob.size() / 2] ^= 0x10;
  }

  BarrierService svc(d.options(/*snapshot_interval=*/4));
  const RecoveryReport& rep = svc.recover();
  EXPECT_GT(rep.snapshot_fallbacks, 0u);
  EXPECT_EQ(rep.skipped_ops, 0u);  // nothing trusted, everything replayed
  EXPECT_TRUE(counters_equal(before, svc.counters()));
  svc.drain();
}

TEST(ServiceRecoveryTest, ReapplyDeliversInFlightArrivalsOnce) {
  Durable d;
  Tally tally;
  {
    BarrierService svc(d.options());
    GroupOptions o;
    o.participants = 3;
    o.on_complete = tally.sink();
    svc.create_group(9, o);
    svc.arrive(9, 0);
    svc.arrive(9, 1);
    svc.drain();
  }
  d.journal->crash();
  EXPECT_EQ(tally.all.size(), 0u);  // phase never released pre-crash

  BarrierService svc(d.options());
  RecoverOptions ro;
  ro.on_complete = tally.sink();
  svc.recover(ro);
  svc.arrive(9, 2);
  svc.drain();
  // The restored waiters and the new arrival deliver exactly once each.
  EXPECT_EQ(tally.count(CompletionKind::kReleased), 3u);
  EXPECT_EQ(tally.all.size(), 3u);
  EXPECT_EQ(svc.counters().completions_strict, 3u);
}

TEST(ServiceRecoveryTest, CancelPolicySettlesInFlightAsCancelled) {
  Durable d;
  Tally tally;
  LogCapture logs(2);
  {
    BarrierService svc(d.options());
    GroupOptions o;
    o.participants = 3;
    o.on_complete = tally.sink();
    svc.create_group(9, o);
    svc.arrive(9, 0);
    svc.arrive(9, 1);
    svc.drain();
    logs.capture(svc);
  }
  d.journal->crash();

  BarrierService svc(d.options());
  RecoverOptions ro;
  ro.resettle = ResettlePolicy::kCancel;
  ro.on_complete = tally.sink();
  const RecoveryReport& rep = svc.recover(ro);
  EXPECT_EQ(rep.cancelled_on_recovery, 2u);
  EXPECT_EQ(tally.count(CompletionKind::kCancelled), 2u);
  EXPECT_EQ(svc.counters().cancelled, 2u);
  // The cancelled members may legally re-arrive; the phase needs all
  // three again.
  svc.arrive(9, 0);
  svc.arrive(9, 1);
  svc.arrive(9, 2);
  svc.drain();
  EXPECT_EQ(tally.count(CompletionKind::kReleased), 3u);
  // The K line is part of the recovered incarnation's log, and the
  // merged-log audit accepts the re-arrivals because of it.
  logs.capture(svc);
  const std::string log = logs.merged();
  EXPECT_NE(log.find(" K g9 c2"), std::string::npos) << log;
  const LogAudit audit = audit_completion_log(log);
  EXPECT_TRUE(audit.violations.empty())
      << (audit.violations.empty() ? "" : audit.violations.front());
  EXPECT_EQ(audit.recovery_cancels, 2u);
}

TEST(ServiceRecoveryTest, OwedLedgerSurvivesCrash) {
  Durable d;
  Tally tally;
  {
    BarrierService svc(d.options());
    GroupOptions o;
    o.participants = 4;
    o.quorum.quorum = 2;
    o.quorum.deadline_budget = std::chrono::nanoseconds(0);
    o.on_complete = tally.sink();
    svc.create_group(3, o);
    for (std::size_t round = 0; round < 3; ++round) {
      svc.arrive(3, 0);
      svc.arrive(3, 1);
    }
    svc.drain();
    EXPECT_EQ(svc.counters().owed_outstanding, 6u);  // 2 stragglers x 3
  }
  d.journal->crash();

  BarrierService svc(d.options());
  RecoverOptions ro;
  ro.on_complete = tally.sink();
  svc.recover(ro);
  EXPECT_EQ(svc.counters().owed_outstanding, 6u);
  EXPECT_EQ(svc.counters().releases_quorum, 3u);
  for (std::size_t round = 0; round < 3; ++round) {
    svc.arrive(3, 2);
    svc.arrive(3, 3);
  }
  svc.drain();
  EXPECT_EQ(svc.counters().owed_outstanding, 0u);
  EXPECT_EQ(tally.count(CompletionKind::kLate), 6u);
}

TEST(ServiceRecoveryTest, TornJournalTailSurfacesInReport) {
  Durable d;
  {
    BarrierService svc(d.options());
    GroupOptions o;
    o.participants = 1;
    svc.create_group(1, o);
    svc.arrive(1, 0);
    svc.drain();
  }
  // Crash tears the last durable frame: chop bytes off the journal.
  d.journal->crash();
  d.journal->truncate(d.journal->durable_size() - 3);

  BarrierService svc(d.options());
  const RecoveryReport& rep = svc.recover();
  EXPECT_EQ(rep.truncated_records, 1u);
  EXPECT_GT(rep.truncated_bytes, 0u);
  // The arrive record was torn; only the create survives.
  EXPECT_EQ(svc.counters().groups_created, 1u);
  EXPECT_EQ(svc.counters().arrivals, 0u);
  svc.drain();
}

TEST(ServiceRecoveryTest, MetricsFoldAndSoakDocument) {
  Durable d;
  Tally tally;
  {
    BarrierService svc(d.options(/*snapshot_interval=*/4));
    run_prefix_workload(svc, tally.sink());
    svc.drain();
  }
  d.journal->crash();

  BarrierService svc(d.options(/*snapshot_interval=*/4));
  RecoverOptions ro;
  ro.on_complete = tally.sink();
  const RecoveryReport& rep = svc.recover(ro);
  svc.drain();

  obs::MetricsRegistry reg;
  fold_service_metrics(svc, reg);
  EXPECT_EQ(reg.counter("service.recovery.v1.replayed_ops"),
            rep.replayed_ops);
  EXPECT_EQ(reg.counter("service.recovery.v1.skipped_ops"), rep.skipped_ops);
  EXPECT_EQ(reg.counter("service.recovery.v1.journal_generation"), 2u);
  EXPECT_EQ(reg.counter("service.recovery.v1.snapshots_loaded"),
            rep.snapshots_loaded);

  obs::BenchRow params;
  params.push_back(obs::BenchCell::num("groups", 6.0));
  std::vector<obs::BenchRow> rows;
  obs::BenchRow row;
  row.push_back(obs::BenchCell::num("workers", 2.0));
  row.push_back(obs::BenchCell::num(
      "replayed_ops", static_cast<double>(rep.replayed_ops)));
  rows.push_back(row);
  const std::string doc =
      recovery_soak_json("test_recovery", params, rep, rows);
  const obs::json::Value parsed = obs::json::parse(doc);
  EXPECT_EQ(obs::validate_bench_json(parsed), 1u);
  EXPECT_EQ(parsed.find("schema")->string, obs::kRecoverySchema);

  // A recovery-schema document missing its recovery object must fail.
  std::string forged = obs::bench_json("test_recovery", params, rows);
  const std::size_t at = forged.find(obs::kBenchSchema);
  ASSERT_NE(at, std::string::npos);
  forged.replace(at, std::string(obs::kBenchSchema).size(),
                 obs::kRecoverySchema);
  EXPECT_THROW(obs::validate_bench_json(obs::json::parse(forged)),
               std::runtime_error);
}

TEST(ServiceRecoveryTest, NoMetricsFamilyWithoutRecovery) {
  BarrierService svc;
  GroupOptions o;
  o.participants = 1;
  svc.create_group(1, o);
  svc.arrive(1, 0);
  svc.drain();
  obs::MetricsRegistry reg;
  fold_service_metrics(svc, reg);
  EXPECT_EQ(reg.counter("service.recovery.v1.replayed_ops"), 0u);
}

}  // namespace
}  // namespace imbar::service
