// Discrete-event kernel: ordering, FIFO ties, time semantics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace imbar::sim {
namespace {

TEST(Engine, StartsAtZeroAndIdle) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.events_dispatched(), 0u);
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_dispatched(), 3u);
}

TEST(Engine, EqualTimesAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule(5.0, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(e.now());
    if (times.size() < 5) e.schedule_in(1.5, chain);
  };
  e.schedule(0.0, chain);
  e.run();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 6.0);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine e;
  e.schedule(10.0, [&] {
    EXPECT_THROW(e.schedule(5.0, [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, RunUntilStopsAndResumes) {
  Engine e;
  std::vector<int> fired;
  e.schedule(1.0, [&] { fired.push_back(1); });
  e.schedule(5.0, [&] { fired.push_back(5); });
  e.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 5}));
}

TEST(Engine, RunUntilIncludesEventsExactlyAtStopTime) {
  Engine e;
  int fired = 0;
  e.schedule(3.0, [&] { ++fired; });
  e.run_until(3.0);  // boundary is inclusive
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine e;
  e.run_until(7.0);
  EXPECT_DOUBLE_EQ(e.now(), 7.0);
}

TEST(Engine, ResetClearsEverything) {
  Engine e;
  int fired = 0;
  e.schedule(4.0, [&] { ++fired; });
  e.reset();
  EXPECT_TRUE(e.idle());
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, ScheduleInUsesCurrentTime) {
  Engine e;
  double observed = -1.0;
  e.schedule(2.0, [&] { e.schedule_in(3.0, [&] { observed = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(observed, 5.0);
}

TEST(Engine, LivelockedModelThrowsInsteadOfSpinning) {
  // A model that perpetually reschedules itself must hit the max-events
  // guard as a thrown error, not hang run() forever.
  Engine e;
  e.set_max_events(1000);
  std::function<void()> forever = [&] { e.schedule_in(1.0, forever); };
  e.schedule(0.0, forever);
  EXPECT_THROW(e.run(), std::runtime_error);
  try {
    Engine e2;
    e2.set_max_events(50);
    std::function<void()> again = [&] { e2.schedule_in(1.0, again); };
    e2.schedule(0.0, again);
    e2.run();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("livelock"), std::string::npos);
  }
}

TEST(Engine, LivelockGuardCoversRunUntil) {
  Engine e;
  e.set_max_events(100);
  std::function<void()> forever = [&] { e.schedule_in(0.001, forever); };
  e.schedule(0.0, forever);
  EXPECT_THROW(e.run_until(1e9), std::runtime_error);
}

TEST(Engine, MaxEventsCapIsPerRunNotLifetime) {
  // TreeBarrierSim reuses one engine across thousands of iterations;
  // the cap must apply to each run() call, not the dispatched_ total.
  Engine e;
  e.set_max_events(10);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) e.schedule_in(1.0, [] {});
    EXPECT_NO_THROW(e.run());
  }
  EXPECT_EQ(e.events_dispatched(), 50u);
}

TEST(Engine, ZeroMaxEventsDisablesTheGuard) {
  Engine e;
  e.set_max_events(0);
  int fired = 0;
  for (int i = 0; i < 100; ++i) e.schedule_in(1.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(e.max_events(), 0u);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  double last = -1.0;
  bool monotone = true;
  for (int i = 1000; i > 0; --i)
    e.schedule(static_cast<double>(i % 97), [&] {
      if (e.now() < last) monotone = false;
      last = e.now();
    });
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.events_dispatched(), 1000u);
}

}  // namespace
}  // namespace imbar::sim
