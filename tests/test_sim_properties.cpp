// Property sweeps over the simulator: invariants that must hold for
// every (p, degree, kind, sigma, service-order, placement) combination.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "model/degree.hpp"
#include "simbarrier/episode.hpp"
#include "simbarrier/tree_sim.hpp"
#include "workload/arrival.hpp"
#include "util/prng.hpp"

namespace imbar::simb {
namespace {

struct PropCase {
  std::size_t procs;
  std::size_t degree;
  TreeKind kind;
  double sigma;
  sim::ServiceOrder order;
};

class SimProperty : public ::testing::TestWithParam<PropCase> {};

TEST_P(SimProperty, StructuralInvariantsHoldPerIteration) {
  const auto& c = GetParam();
  const Topology topo = c.kind == TreeKind::kPlain
                            ? Topology::plain(c.procs, c.degree)
                            : Topology::mcs(c.procs, c.degree);
  topo.validate();

  SimOptions opts;
  opts.t_c = 20.0;
  opts.service_order = c.order;
  TreeBarrierSim sim(topo, opts);

  Xoshiro256 rng(0xBEEF ^ c.procs ^ (c.degree << 10));
  std::vector<double> signals(c.procs);
  double base = 0.0;
  for (int iter = 0; iter < 8; ++iter) {
    for (auto& s : signals) s = base + rng.uniform() * c.sigma;
    const auto r = sim.run_iteration(signals);
    base = r.release + 1.0;

    // 1. The release cannot precede the last arrival plus its own path.
    EXPECT_GE(r.sync_delay,
              static_cast<double>(tree_levels(c.procs, c.degree)) * opts.t_c -
                  1e-9);
    // 2. ...and cannot exceed full serialization of every update.
    EXPECT_LE(r.sync_delay,
              static_cast<double>(r.updates) * opts.t_c + 1e-9);
    // 3. Exactly p + counters - 1 updates (every counter fills once).
    EXPECT_EQ(r.updates, c.procs + topo.counters() - 1);
    // 4. Per-processor updates sum to the total; each in [1, depth].
    const auto& per = sim.last_updates_per_proc();
    EXPECT_EQ(std::accumulate(per.begin(), per.end(), std::size_t{0},
                              [](std::size_t a, int b) {
                                return a + static_cast<std::size_t>(b);
                              }),
              r.updates);
    for (int u : per) {
      EXPECT_GE(u, 1);
      EXPECT_LE(u, topo.max_depth());
    }
    // 5. The last processor's metrics are consistent.
    EXPECT_GE(r.last_proc, 0);
    EXPECT_LT(r.last_proc, static_cast<int>(c.procs));
    EXPECT_GE(r.last_proc_wait, 0.0);
    EXPECT_EQ(r.last_proc_depth,
              per[static_cast<std::size_t>(r.last_proc)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimProperty,
    ::testing::Values(
        PropCase{2, 2, TreeKind::kPlain, 0.0, sim::ServiceOrder::kFifo},
        PropCase{7, 2, TreeKind::kPlain, 50.0, sim::ServiceOrder::kFifo},
        PropCase{16, 4, TreeKind::kPlain, 0.0, sim::ServiceOrder::kFifo},
        PropCase{33, 4, TreeKind::kPlain, 300.0, sim::ServiceOrder::kFifo},
        PropCase{64, 8, TreeKind::kPlain, 100.0, sim::ServiceOrder::kRandom},
        PropCase{100, 3, TreeKind::kPlain, 800.0, sim::ServiceOrder::kFifo},
        PropCase{256, 16, TreeKind::kPlain, 40.0, sim::ServiceOrder::kRandom},
        PropCase{256, 256, TreeKind::kPlain, 500.0, sim::ServiceOrder::kFifo},
        PropCase{5, 4, TreeKind::kMcs, 10.0, sim::ServiceOrder::kFifo},
        PropCase{56, 4, TreeKind::kMcs, 150.0, sim::ServiceOrder::kFifo},
        PropCase{64, 2, TreeKind::kMcs, 0.0, sim::ServiceOrder::kRandom},
        PropCase{200, 16, TreeKind::kMcs, 600.0, sim::ServiceOrder::kFifo},
        PropCase{1024, 4, TreeKind::kMcs, 250.0, sim::ServiceOrder::kFifo}));

class DynamicProperty : public ::testing::TestWithParam<PropCase> {};

TEST_P(DynamicProperty, DynamicInvariantsHoldAcrossEpisodes) {
  const auto& c = GetParam();
  const Topology topo = Topology::mcs(c.procs, c.degree);
  SimOptions opts;
  opts.t_c = 20.0;
  opts.placement = Placement::kDynamic;
  TreeBarrierSim sim(topo, opts);

  Xoshiro256 rng(0xFACE ^ c.procs);
  std::vector<double> signals(c.procs);
  double base = 0.0;
  std::uint64_t prev_extras = 0;
  for (int iter = 0; iter < 20; ++iter) {
    for (auto& s : signals) s = base + rng.uniform() * c.sigma;
    const auto r = sim.run_iteration(signals);
    base = r.release + 1.0;

    // Placement stays a permutation respecting per-counter capacity.
    std::vector<int> count(topo.counters(), 0);
    for (int pc : sim.placement()) ++count[static_cast<std::size_t>(pc)];
    for (std::size_t cc = 0; cc < topo.counters(); ++cc)
      ASSERT_EQ(count[cc], topo.attached_count(static_cast<int>(cc)));

    // Victim reads never outnumber swaps; both bounded per episode.
    EXPECT_LE(sim.total_extras(), sim.total_swaps());
    EXPECT_LE(sim.total_extras() - prev_extras, topo.counters());
    prev_extras = sim.total_extras();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DynamicProperty,
    ::testing::Values(
        PropCase{8, 2, TreeKind::kMcs, 100.0, sim::ServiceOrder::kFifo},
        PropCase{56, 4, TreeKind::kMcs, 400.0, sim::ServiceOrder::kFifo},
        PropCase{64, 16, TreeKind::kMcs, 50.0, sim::ServiceOrder::kFifo},
        PropCase{200, 3, TreeKind::kMcs, 900.0, sim::ServiceOrder::kFifo},
        PropCase{512, 4, TreeKind::kMcs, 250.0, sim::ServiceOrder::kFifo}));

TEST(SimProperty, SlackMonotonicallyHelpsDynamicPlacement) {
  // Across slacks, the dynamic scheme's mean last-proc depth must be
  // non-increasing (within noise) — the Figure 8 trend as a property.
  const Topology topo = Topology::mcs(256, 4);
  double prev_depth = 1e9;
  for (double slack : {0.0, 1000.0, 4000.0}) {
    IidGenerator gen(256, make_normal(10000.0, 250.0), 99);
    SimOptions so;
    so.placement = Placement::kDynamic;
    TreeBarrierSim sim(topo, so);
    EpisodeOptions eo;
    eo.iterations = 60;
    eo.warmup = 15;
    eo.slack = slack;
    const auto m = run_episode(sim, gen, eo);
    EXPECT_LE(m.mean_last_depth, prev_depth + 0.3) << "slack " << slack;
    prev_depth = m.mean_last_depth;
  }
  EXPECT_LT(prev_depth, 2.0);
}

TEST(SimProperty, CentralEqualsDegreePTree) {
  // A plain tree of degree >= p IS the central counter.
  Xoshiro256 rng(3);
  std::vector<double> signals(48);
  for (auto& s : signals) s = rng.uniform() * 400.0;
  TreeBarrierSim central(Topology::central(48), SimOptions{});
  TreeBarrierSim wide(Topology::plain(48, 48), SimOptions{});
  EXPECT_DOUBLE_EQ(central.run_iteration(signals).release,
                   wide.run_iteration(signals).release);
}

}  // namespace
}  // namespace imbar::simb
