// Serial resources: queueing math is the contention model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/prng.hpp"

namespace imbar::sim {
namespace {

TEST(SerialResource, SingleRequestServedImmediately) {
  Engine e;
  SerialResource r(e);
  double start = -1, done = -1;
  e.schedule(2.0, [&] {
    r.request(3.0, [&](Time s, Time d) {
      start = s;
      done = d;
    });
  });
  e.run();
  EXPECT_DOUBLE_EQ(start, 2.0);
  EXPECT_DOUBLE_EQ(done, 5.0);
  EXPECT_EQ(r.requests_served(), 1u);
  EXPECT_DOUBLE_EQ(r.total_wait(), 0.0);
  EXPECT_DOUBLE_EQ(r.total_busy(), 3.0);
}

TEST(SerialResource, SimultaneousRequestsSerializeFifo) {
  Engine e;
  SerialResource r(e);
  std::vector<double> done_times;
  e.schedule(0.0, [&] {
    for (int i = 0; i < 4; ++i)
      r.request(1.0, [&](Time, Time d) { done_times.push_back(d); });
  });
  e.run();
  EXPECT_EQ(done_times, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_DOUBLE_EQ(r.total_wait(), 0.0 + 1.0 + 2.0 + 3.0);
}

TEST(SerialResource, LateArrivalWaitsForBusyServer) {
  Engine e;
  SerialResource r(e);
  double second_start = -1;
  e.schedule(0.0, [&] { r.request(10.0, [](Time, Time) {}); });
  e.schedule(4.0, [&] {
    r.request(1.0, [&](Time s, Time) { second_start = s; });
  });
  e.run();
  EXPECT_DOUBLE_EQ(second_start, 10.0);
  EXPECT_DOUBLE_EQ(r.total_wait(), 6.0);
}

TEST(SerialResource, IdleGapThenNewRequest) {
  Engine e;
  SerialResource r(e);
  double start2 = -1;
  e.schedule(0.0, [&] { r.request(1.0, [](Time, Time) {}); });
  e.schedule(50.0, [&] { r.request(1.0, [&](Time s, Time) { start2 = s; }); });
  e.run();
  EXPECT_DOUBLE_EQ(start2, 50.0);  // no phantom busy time
}

TEST(SerialResource, CompletionMayRequestOtherResources) {
  Engine e;
  SerialResource a(e), b(e);
  double b_done = -1;
  e.schedule(0.0, [&] {
    a.request(2.0, [&](Time, Time) {
      b.request(3.0, [&](Time, Time d) { b_done = d; });
    });
  });
  e.run();
  EXPECT_DOUBLE_EQ(b_done, 5.0);
}

TEST(SerialResource, RandomOrderServesEveryRequest) {
  Engine e;
  Xoshiro256 rng(77);
  SerialResource r(e, ServiceOrder::kRandom, &rng);
  int completed = 0;
  e.schedule(0.0, [&] {
    for (int i = 0; i < 50; ++i) r.request(1.0, [&](Time, Time) { ++completed; });
  });
  e.run();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(r.requests_served(), 50u);
  // Total busy/wait are order-independent for equal service times.
  EXPECT_DOUBLE_EQ(r.total_busy(), 50.0);
  EXPECT_DOUBLE_EQ(r.total_wait(), 49.0 * 50.0 / 2.0);
}

TEST(SerialResource, RandomOrderIsDeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Engine e;
    Xoshiro256 rng(seed);
    SerialResource r(e, ServiceOrder::kRandom, &rng);
    std::vector<int> order;
    e.schedule(0.0, [&] {
      for (int i = 0; i < 10; ++i)
        r.request(1.0, [&order, i](Time, Time) { order.push_back(i); });
    });
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST(SerialResource, StatsReset) {
  Engine e;
  SerialResource r(e);
  e.schedule(0.0, [&] { r.request(1.0, [](Time, Time) {}); });
  e.run();
  r.reset_stats();
  EXPECT_EQ(r.requests_served(), 0u);
  EXPECT_DOUBLE_EQ(r.total_wait(), 0.0);
  EXPECT_DOUBLE_EQ(r.total_busy(), 0.0);
}

TEST(SerialResource, ServiceScalerInflatesByQueueDepth) {
  // Hot-spot model: with 3 back-to-back requests of base 10 and scaler
  // base*(1 + 0.5*queued): the first starts immediately (nothing queued
  // behind it yet) -> 10 (0-10); the second starts with one waiter
  // still queued -> 15 (10-25); the third runs alone -> 10 (25-35).
  Engine e;
  SerialResource r(e);
  r.set_service_scaler([](Time base, std::size_t queued) {
    return base * (1.0 + 0.5 * static_cast<double>(queued));
  });
  std::vector<double> done_times;
  e.schedule(0.0, [&] {
    for (int i = 0; i < 3; ++i)
      r.request(10.0, [&](Time, Time d) { done_times.push_back(d); });
  });
  e.run();
  EXPECT_EQ(done_times, (std::vector<double>{10.0, 25.0, 35.0}));
}

TEST(SerialResource, ScalerIgnoredWhenQueueEmpty) {
  Engine e;
  SerialResource r(e);
  r.set_service_scaler([](Time base, std::size_t queued) {
    return base * (1.0 + 10.0 * static_cast<double>(queued));
  });
  double done = -1;
  e.schedule(0.0, [&] { r.request(5.0, [&](Time, Time d) { done = d; }); });
  e.run();
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(SerialResource, MeanWaitMatchesMd1Queueing) {
  // Deterministic service t_c with batch arrival of n requests: the
  // k-th served waits (k-1) * t_c; mean wait = (n-1)/2 * t_c. This is
  // the contention formula implicit in the paper's Eq. 1 (each level of
  // a full tree serves d updates per episode).
  Engine e;
  SerialResource r(e);
  const int n = 16;
  const double tc = 20.0;
  e.schedule(0.0, [&] {
    for (int i = 0; i < n; ++i) r.request(tc, [](Time, Time) {});
  });
  e.run();
  EXPECT_DOUBLE_EQ(r.total_wait() / n, (n - 1) / 2.0 * tc);
}

}  // namespace
}  // namespace imbar::sim
