// SOR application: numerical determinism across thread counts and
// barrier kinds, physical sanity of the relaxation.
#include <gtest/gtest.h>

#include "apps/sor/sor.hpp"

namespace imbar::sor {
namespace {

TEST(SorReference, ChecksumIsDeterministic) {
  EXPECT_DOUBLE_EQ(reference_checksum(32, 16, 10),
                   reference_checksum(32, 16, 10));
}

TEST(SorReference, HeatDiffusesDownward) {
  // More iterations push more heat from the hot top edge into the
  // interior: checksum grows monotonically toward steady state.
  double prev = 0.0;
  for (std::size_t it : {1u, 5u, 20u, 80u}) {
    const double c = reference_checksum(16, 16, it);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(SorRun, Validation) {
  SorParams p;
  p.threads = 0;
  EXPECT_THROW(run_sor(p), std::invalid_argument);
  p = {};
  p.nx = 2;
  p.threads = 4;
  EXPECT_THROW(run_sor(p), std::invalid_argument);
  p = {};
  p.iterations = 0;
  EXPECT_THROW(run_sor(p), std::invalid_argument);
}

TEST(SorRun, SingleThreadMatchesReference) {
  SorParams p;
  p.nx = 40;
  p.ny = 24;
  p.iterations = 15;
  p.threads = 1;
  const auto r = run_sor(p);
  EXPECT_DOUBLE_EQ(r.checksum, reference_checksum(40, 24, 15));
}

// The headline determinism property: identical results for every thread
// count and barrier kind (the sweep reads only the previous array, so
// scheduling cannot change the arithmetic).
struct SorCase {
  const char* name;
  std::size_t threads;
  BarrierKind kind;
  std::size_t degree;
};

class SorDeterminism : public ::testing::TestWithParam<SorCase> {};

TEST_P(SorDeterminism, MatchesSerialReference) {
  const auto& param = GetParam();
  SorParams p;
  p.nx = 48;
  p.ny = 20;
  p.iterations = 12;
  p.threads = param.threads;
  p.barrier.kind = param.kind;
  p.barrier.degree = param.degree;
  const auto r = run_sor(p);
  EXPECT_DOUBLE_EQ(r.checksum, reference_checksum(48, 20, 12));
  EXPECT_GT(r.total_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SorDeterminism,
    ::testing::Values(
        SorCase{"t2_central", 2, BarrierKind::kCentral, 0},
        SorCase{"t3_combining_d2", 3, BarrierKind::kCombiningTree, 2},
        SorCase{"t4_combining_d4", 4, BarrierKind::kCombiningTree, 4},
        SorCase{"t4_mcs_d2", 4, BarrierKind::kMcsTree, 2},
        SorCase{"t5_dynamic_d2", 5, BarrierKind::kDynamicPlacement, 2},
        SorCase{"t4_dissemination", 4, BarrierKind::kDissemination, 0},
        SorCase{"t4_tournament", 4, BarrierKind::kTournament, 0},
        SorCase{"t5_mcs_local", 5, BarrierKind::kMcsLocalSpin, 0},
        SorCase{"t4_adaptive", 4, BarrierKind::kAdaptive, 0},
        SorCase{"t6_dynamic_d4", 6, BarrierKind::kDynamicPlacement, 4}),
    [](const auto& info) { return info.param.name; });

TEST(SorRun, OddIterationCountAlsoDeterministic) {
  SorParams p;
  p.nx = 30;
  p.ny = 10;
  p.iterations = 7;  // result lives in the other buffer
  p.threads = 3;
  const auto r = run_sor(p);
  EXPECT_DOUBLE_EQ(r.checksum, reference_checksum(30, 10, 7));
}

TEST(SorRun, ResidualShrinksWithIterations) {
  SorParams p;
  p.nx = 24;
  p.ny = 24;
  p.threads = 2;
  p.iterations = 5;
  const double early = run_sor(p).max_residual;
  p.iterations = 100;
  const double late = run_sor(p).max_residual;
  EXPECT_LT(late, early);
  EXPECT_GT(early, 0.0);
}

TEST(SorRun, InjectedImbalanceRaisesMeasuredSigma) {
  SorParams p;
  p.nx = 32;
  p.ny = 16;
  p.threads = 3;
  p.iterations = 30;
  p.extra_work_sigma_us = 0.0;
  const double calm = run_sor(p).sigma_arrival_us;
  p.extra_work_sigma_us = 2000.0;
  const double wild = run_sor(p).sigma_arrival_us;
  EXPECT_GT(wild, calm);
  EXPECT_GT(wild, 300.0);
}

TEST(SorRun, BarrierCountersMatchIterations) {
  SorParams p;
  p.nx = 16;
  p.ny = 8;
  p.threads = 4;
  p.iterations = 25;
  p.barrier.kind = BarrierKind::kCombiningTree;
  p.barrier.degree = 2;
  const auto r = run_sor(p);
  EXPECT_EQ(r.barrier_counters.episodes, 25u);
}

TEST(SorFuzzy, MatchesSerialReference) {
  SorParams p;
  p.nx = 48;
  p.ny = 20;
  p.iterations = 14;
  p.threads = 4;
  p.sync = SyncMode::kFuzzy;
  p.barrier.kind = BarrierKind::kCombiningTree;
  p.barrier.degree = 2;
  EXPECT_DOUBLE_EQ(run_sor(p).checksum, reference_checksum(48, 20, 14));
}

TEST(SorFuzzy, WorksWithDynamicPlacementAndImbalance) {
  SorParams p;
  p.nx = 40;
  p.ny = 16;
  p.iterations = 20;
  p.threads = 5;
  p.sync = SyncMode::kFuzzy;
  p.barrier.kind = BarrierKind::kDynamicPlacement;
  p.barrier.degree = 2;
  p.extra_work_sigma_us = 400.0;
  EXPECT_DOUBLE_EQ(run_sor(p).checksum, reference_checksum(40, 16, 20));
}

TEST(SorFuzzy, TinyBlocksHaveNoInteriorSlack) {
  // One row per thread: everything is boundary; still correct.
  SorParams p;
  p.nx = 4;
  p.ny = 8;
  p.iterations = 9;
  p.threads = 4;
  p.sync = SyncMode::kFuzzy;
  p.barrier.kind = BarrierKind::kCentral;
  EXPECT_DOUBLE_EQ(run_sor(p).checksum, reference_checksum(4, 8, 9));
}

TEST(SorFuzzy, RejectsNonSplittableBarrier) {
  SorParams p;
  p.sync = SyncMode::kFuzzy;
  p.barrier.kind = BarrierKind::kDissemination;
  EXPECT_THROW(run_sor(p), std::invalid_argument);
}

TEST(SorNeighbor, MatchesSerialReference) {
  SorParams p;
  p.nx = 48;
  p.ny = 20;
  p.iterations = 14;
  p.threads = 4;
  p.sync = SyncMode::kNeighbor;
  EXPECT_DOUBLE_EQ(run_sor(p).checksum, reference_checksum(48, 20, 14));
}

TEST(SorNeighbor, CorrectUnderHeavyImbalance) {
  SorParams p;
  p.nx = 36;
  p.ny = 12;
  p.iterations = 25;
  p.threads = 6;
  p.sync = SyncMode::kNeighbor;
  p.extra_work_sigma_us = 600.0;
  EXPECT_DOUBLE_EQ(run_sor(p).checksum, reference_checksum(36, 12, 25));
}

TEST(SorNeighbor, SingleThreadDegenerates) {
  SorParams p;
  p.nx = 12;
  p.ny = 6;
  p.iterations = 5;
  p.threads = 1;
  p.sync = SyncMode::kNeighbor;
  EXPECT_DOUBLE_EQ(run_sor(p).checksum, reference_checksum(12, 6, 5));
}

TEST(SorRun, UnevenRowPartitionIsHandled) {
  // 17 rows over 4 threads: 5/4/4/4.
  SorParams p;
  p.nx = 17;
  p.ny = 9;
  p.threads = 4;
  p.iterations = 9;
  EXPECT_DOUBLE_EQ(run_sor(p).checksum, reference_checksum(17, 9, 9));
}

}  // namespace
}  // namespace imbar::sor
