// SOR workload model: the KSR1 substitute's calibration and scaling.
#include <gtest/gtest.h>

#include <vector>

#include "stats/summary.hpp"
#include "workload/sor_model.hpp"

namespace imbar {
namespace {

TEST(SorModel, CommEventFormulaMatchesPaper) {
  // 4 * ceil(dy / 16): the paper's footnote-3 expression.
  SorModelParams p;
  p.dy = 210;
  p.subline = 16;
  EXPECT_EQ(sor_comm_events(p), 4u * 14u);
  p.dy = 16;
  EXPECT_EQ(sor_comm_events(p), 4u);
  p.dy = 17;
  EXPECT_EQ(sor_comm_events(p), 8u);
}

TEST(SorModel, DefaultCalibrationHitsPaperOperatingPoint) {
  // Paper Section 7: d_y = 210 gives ~9.5 ms mean iteration time with
  // sigma ~110 us on 56 processors.
  SorModelParams p;  // defaults are the calibrated values
  EXPECT_NEAR(sor_predicted_mean_us(p), 9500.0, 250.0);
  EXPECT_NEAR(sor_predicted_sigma_us(p), 110.0, 5.0);
}

TEST(SorModel, SigmaGrowsWithDy) {
  SorModelParams p;
  double prev = 0.0;
  for (std::size_t dy : {60u, 120u, 210u, 420u, 840u}) {
    p.dy = dy;
    const double s = sor_predicted_sigma_us(p);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(SorModel, EmpiricalMomentsMatchPrediction) {
  SorModelParams p;
  SorWorkloadModel gen(p, 77);
  RunningStats rs;
  std::vector<double> row(p.procs);
  for (std::size_t i = 0; i < 400; ++i) {
    gen.generate(i, row);
    for (double w : row) rs.add(w);
  }
  EXPECT_NEAR(rs.mean(), sor_predicted_mean_us(p), sor_predicted_mean_us(p) * 0.01);
  EXPECT_NEAR(rs.stddev(), sor_predicted_sigma_us(p),
              sor_predicted_sigma_us(p) * 0.1);
}

TEST(SorModel, NominalAccessors) {
  SorModelParams p;
  SorWorkloadModel gen(p, 1);
  EXPECT_EQ(gen.procs(), 56u);
  EXPECT_DOUBLE_EQ(gen.nominal_mean(), sor_predicted_mean_us(p));
  EXPECT_DOUBLE_EQ(gen.nominal_stddev(), sor_predicted_sigma_us(p));
  EXPECT_EQ(gen.params().dy, p.dy);
}

TEST(SorModel, Validation) {
  SorModelParams p;
  p.procs = 0;
  EXPECT_THROW(SorWorkloadModel(p, 1), std::invalid_argument);
  p = {};
  p.dy = 0;
  EXPECT_THROW(SorWorkloadModel(p, 1), std::invalid_argument);
  p = {};
  SorWorkloadModel gen(p, 1);
  std::vector<double> wrong(p.procs + 1);
  EXPECT_THROW(gen.generate(0, wrong), std::invalid_argument);
}

TEST(SorModel, WorkTimesArePositiveAndAboveCompute) {
  SorModelParams p;
  SorWorkloadModel gen(p, 5);
  const double compute =
      static_cast<double>(p.dx_per_proc * p.dy) * p.t_flop_us;
  std::vector<double> row(p.procs);
  gen.generate(0, row);
  for (double w : row) EXPECT_GT(w, compute);
}

}  // namespace
}  // namespace imbar
