// Unit coverage for util/spin_wait.hpp: the escalation ladder, the
// WaitContext deadline math, cancel-flag precedence, and the
// release-beats-timeout final recheck that every bounded barrier wait
// leans on.
#include "util/spin_wait.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "barrier/factory.hpp"
#include "robust/robust_barrier.hpp"

namespace imbar {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

TEST(SpinWait, EscalatesWithoutBlocking) {
  // The unbounded waiter must stay non-blocking through every rung of
  // the ladder: pause bursts (rounds < spin_limit), then yields.
  SpinWait w(/*spin_limit=*/4);
  for (int round = 0; round < 64; ++round) w.wait();
  w.reset();
  for (int round = 0; round < 8; ++round) w.wait();
}

TEST(SpinWait, SpinUntilReturnsOnceSatisfied) {
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(2ms);
    flag.store(true, std::memory_order_release);
  });
  spin_until([&] { return flag.load(std::memory_order_acquire); });
  setter.join();
  EXPECT_TRUE(flag.load());
}

TEST(WaitContext, DefaultIsUnbounded) {
  const WaitContext ctx;
  EXPECT_FALSE(ctx.bounded());
  EXPECT_EQ(ctx.cancel, nullptr);
  EXPECT_EQ(ctx.deadline, Clock::time_point::max());
}

TEST(WaitContext, AfterAddsTimeoutToNow) {
  const Clock::time_point before = Clock::now();
  const WaitContext ctx = WaitContext::after(250ms);
  const Clock::time_point after = Clock::now();
  EXPECT_TRUE(ctx.bounded());
  // now() was taken between `before` and `after`, so the deadline is
  // bracketed by those two instants plus the timeout.
  EXPECT_GE(ctx.deadline, before + 250ms);
  EXPECT_LE(ctx.deadline, after + 250ms);
}

TEST(WaitContext, AfterCarriesCancelFlag) {
  std::atomic<bool> cancel{false};
  const WaitContext ctx = WaitContext::after(1ms, &cancel);
  EXPECT_EQ(ctx.cancel, &cancel);
}

TEST(DeadlineSpinWait, UnboundedContextNeverExpires) {
  DeadlineSpinWait w{WaitContext{}, /*spin_limit=*/2, /*yield_limit=*/2};
  for (int round = 0; round < 32; ++round)
    EXPECT_EQ(w.wait(), WaitStatus::kReady);
}

TEST(DeadlineSpinWait, ExpiredDeadlineReportsTimeout) {
  DeadlineSpinWait w{WaitContext{Clock::now() - 1ms, nullptr}};
  EXPECT_EQ(w.wait(), WaitStatus::kTimeout);
}

TEST(DeadlineSpinWait, CancelTakesPrecedenceOverExpiredDeadline) {
  // Both terminal conditions hold at once; the cancel flag must win so
  // a cohort-wide break is never misdiagnosed as this thread stalling.
  std::atomic<bool> cancel{true};
  DeadlineSpinWait w{WaitContext{Clock::now() - 1ms, &cancel}};
  EXPECT_EQ(w.wait(), WaitStatus::kCancelled);
}

TEST(DeadlineSpinWait, ResetRestartsTheLadder) {
  std::atomic<bool> cancel{false};
  DeadlineSpinWait w{WaitContext{Clock::time_point::max(), &cancel},
                     /*spin_limit=*/2, /*yield_limit=*/2};
  for (int round = 0; round < 8; ++round) EXPECT_EQ(w.wait(), WaitStatus::kReady);
  w.reset();
  cancel.store(true, std::memory_order_release);
  EXPECT_EQ(w.wait(), WaitStatus::kCancelled);
}

TEST(SpinUntilBounded, SatisfiedPredicateIgnoresExpiredDeadline) {
  const WaitContext expired{Clock::now() - 1ms, nullptr};
  EXPECT_EQ(spin_until([] { return true; }, expired), WaitStatus::kReady);
}

TEST(SpinUntilBounded, UnsatisfiedPredicateTimesOut) {
  const WaitContext expired{Clock::now() - 1ms, nullptr};
  EXPECT_EQ(spin_until([] { return false; }, expired), WaitStatus::kTimeout);
}

TEST(SpinUntilBounded, ReleaseConcurrentWithTimeoutReportsReady) {
  // The release-beats-timeout recheck, pinned deterministically: the
  // deadline is already expired, and the condition becomes true between
  // the failed poll and the final recheck. A waiter whose condition was
  // satisfied must never be reported as timed out.
  const WaitContext expired{Clock::now() - 1ms, nullptr};
  int polls = 0;
  const auto released_on_second_poll = [&] { return ++polls >= 2; };
  EXPECT_EQ(spin_until(released_on_second_poll, expired), WaitStatus::kReady);
  EXPECT_EQ(polls, 2);
}

TEST(SpinUntilBounded, CancelReportsCancelledNotTimeout) {
  std::atomic<bool> cancel{true};
  const WaitContext ctx{Clock::now() - 1ms, &cancel};
  EXPECT_EQ(spin_until([] { return false; }, ctx), WaitStatus::kCancelled);
}

TEST(SpinUntilBounded, NearDeadlineIsHonouredWithinSleepQuantum) {
  // End-to-end: a 20 ms bound on a never-true predicate returns in
  // bounded time, not far past the deadline (the sleep rungs cap at
  // 512 us, so overshoot stays small; allow generous slack for CI).
  const Clock::time_point start = Clock::now();
  const WaitStatus s = spin_until([] { return false; }, WaitContext::after(20ms));
  const auto elapsed = Clock::now() - start;
  EXPECT_EQ(s, WaitStatus::kTimeout);
  EXPECT_GE(elapsed, 20ms);
  EXPECT_LT(elapsed, 5s);
}

TEST(SpinUntilFor, ForwardsCancelFlag) {
  std::atomic<bool> cancel{true};
  EXPECT_EQ(spin_until_for([] { return false; }, 10s, &cancel),
            WaitStatus::kCancelled);
}

TEST(ExponentialBackoff, DelaysStayWithinBaseAndCap) {
  ExponentialBackoff::Options opts;
  opts.base = std::chrono::microseconds(10);
  opts.cap = std::chrono::microseconds(200);
  ExponentialBackoff b(opts, /*seed=*/42, /*stream=*/0);
  for (int i = 0; i < 256; ++i) {
    const auto d = b.next_delay();
    EXPECT_GE(d, opts.base);
    EXPECT_LE(d, opts.cap);
  }
}

TEST(ExponentialBackoff, SeededScheduleIsReproducible) {
  ExponentialBackoff::Options opts;
  ExponentialBackoff a(opts, 7, 3);
  ExponentialBackoff b(opts, 7, 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_delay(), b.next_delay());
}

TEST(ExponentialBackoff, StreamsAreDecorrelated) {
  // Two waiters sharing a seed but not a stream must not retry in
  // lockstep: their delay schedules have to diverge somewhere.
  ExponentialBackoff::Options opts;
  ExponentialBackoff a(opts, 7, 0);
  ExponentialBackoff b(opts, 7, 1);
  bool diverged = false;
  for (int i = 0; i < 64; ++i)
    diverged = diverged || (a.next_delay() != b.next_delay());
  EXPECT_TRUE(diverged);
}

TEST(ExponentialBackoff, ResetRestartsTheRecurrence) {
  ExponentialBackoff::Options opts;
  opts.base = std::chrono::microseconds(8);
  ExponentialBackoff b(opts, 11, 0);
  for (int i = 0; i < 16; ++i) b.next_delay();
  b.reset();
  // After reset the recurrence restarts from base: the first draw is in
  // [base, 3 * base].
  const auto d = b.next_delay();
  EXPECT_GE(d, opts.base);
  EXPECT_LE(d, 3 * opts.base);
}

TEST(ExponentialBackoff, PauseEscalationNeverBlocksLong) {
  ExponentialBackoff::Options opts;
  opts.spin_limit = 4;
  opts.yield_limit = 4;
  opts.cap = std::chrono::microseconds(64);
  ExponentialBackoff b(opts, 1, 0);
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < 64; ++i) b.pause();  // pauses, yields, then sleeps
  EXPECT_LT(Clock::now() - start, 2s);
}

TEST(WaitStatusNames, RoundTripStrings) {
  EXPECT_STREQ(to_string(WaitStatus::kReady), "ready");
  EXPECT_STREQ(to_string(WaitStatus::kTimeout), "timeout");
  EXPECT_STREQ(to_string(WaitStatus::kCancelled), "cancelled");
}

// The same taxonomy guarantee one layer up: a robust-barrier waiter
// whose deadline expires in the same phase the barrier completes must
// report kOk, never break the barrier. Pinned deterministically like
// SpinUntilBounded.ReleaseConcurrentWithTimeoutReportsReady: the peer
// is already parked inside the episode, so the bounded waiter's own
// arrival completes it at the exact instant its (long-expired)
// deadline is checked — completion must win. Central is
// release-counted (barrier_kind_release_counted), the class the
// post-timeout episode-ordinal recheck covers.
TEST(RobustBarrierTaxonomy, ReleaseInSamePhaseAsExpiredDeadlineIsOk) {
  BarrierConfig cfg;
  cfg.kind = BarrierKind::kCentral;
  cfg.participants = 2;
  ASSERT_TRUE(barrier_kind_release_counted(cfg.kind));
  robust::RobustBarrier rb(cfg);

  for (int episode = 0; episode < 4; ++episode) {
    std::atomic<bool> peer_in{false};
    std::thread peer([&] {
      peer_in.store(true, std::memory_order_release);
      EXPECT_EQ(rb.arrive_and_wait(0), robust::BarrierStatus::kOk);
    });
    spin_until([&] { return peer_in.load(std::memory_order_acquire); });
    // Give the peer time to park inside the episode, so our arrival is
    // the releasing one and lands with the deadline long expired.
    std::this_thread::sleep_for(50ms);
    EXPECT_EQ(rb.arrive_and_wait_until(1, Clock::now() - 1s),
              robust::BarrierStatus::kOk);
    peer.join();
    EXPECT_FALSE(rb.broken());
  }
}

}  // namespace
}  // namespace imbar
