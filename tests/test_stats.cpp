// Descriptive statistics: streaming moments, merging, quantiles,
// histogram, bootstrap.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "util/prng.hpp"

namespace imbar {
namespace {

TEST(RunningStats, MatchesClosedFormOnSmallSample) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.sem(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(3);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 3;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), whole.skewness(), 1e-6);
  EXPECT_NEAR(a.excess_kurtosis(), whole.excess_kurtosis(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, SkewnessSignMatchesShape) {
  RunningStats right, sym;
  Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_open();
    right.add(-std::log(u));        // exponential: skew +2
    sym.add(u - 0.5);               // uniform: skew 0
  }
  EXPECT_GT(right.skewness(), 1.5);
  EXPECT_NEAR(sym.skewness(), 0.0, 0.05);
  // Uniform excess kurtosis is -1.2.
  EXPECT_NEAR(sym.excess_kurtosis(), -1.2, 0.1);
}

TEST(Quantile, KnownValues) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.1), 1.4);  // type-7 interpolation
}

TEST(Quantile, UnsortedInputIsHandled) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.3), 7.0);
}

TEST(MeanStd, Helpers) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of(std::vector<double>{1.0}), 0.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.0);
  h.add(9.99);
  h.add(-1.0);   // underflow
  h.add(10.0);   // overflow (hi-exclusive)
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRendersEachBin) {
  Histogram h(0, 4, 4);
  for (int i = 0; i < 4; ++i) h.add(i + 0.5);
  const std::string art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(Bootstrap, CoversTrueMeanOfNormalSample) {
  Xoshiro256 rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i)
    xs.push_back(10.0 + (rng.uniform() - 0.5));  // mean 10, tight
  const Interval ci = bootstrap_mean_ci(xs, 0.95, 500, 7);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_LT(ci.width(), 0.2);
  EXPECT_GT(ci.width(), 0.0);
}

TEST(Bootstrap, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(bootstrap_mean_ci({}, 0.95).width(), 0.0);
  std::vector<double> one{4.0};
  const Interval ci = bootstrap_mean_ci(one);
  EXPECT_DOUBLE_EQ(ci.lo, 4.0);
  EXPECT_DOUBLE_EQ(ci.hi, 4.0);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const Interval a = bootstrap_mean_ci(xs, 0.9, 300, 99);
  const Interval b = bootstrap_mean_ci(xs, 0.9, 300, 99);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace imbar
