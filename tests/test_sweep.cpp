// Degree sweeps: the exhaustive-simulation machinery behind Figs 2-4.
#include <gtest/gtest.h>

#include "model/degree.hpp"
#include "simbarrier/sweep.hpp"

namespace imbar::simb {
namespace {

TEST(DrawArrivals, ShapeAndShift) {
  const auto sets = draw_arrival_sets(32, 100.0, 5, 7);
  ASSERT_EQ(sets.size(), 5u);
  for (const auto& set : sets) {
    ASSERT_EQ(set.size(), 32u);
    double lo = 1e300;
    for (double a : set) lo = std::min(lo, a);
    EXPECT_DOUBLE_EQ(lo, 0.0);  // shifted so the earliest arrival is 0
  }
}

TEST(DrawArrivals, SigmaZeroIsAllZeros) {
  const auto sets = draw_arrival_sets(8, 0.0, 3, 1);
  for (const auto& set : sets)
    for (double a : set) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(DrawArrivals, DeterministicGivenSeed) {
  EXPECT_EQ(draw_arrival_sets(16, 50.0, 4, 9), draw_arrival_sets(16, 50.0, 4, 9));
}

TEST(DrawArrivals, FromArbitrarySamplerIsShiftedNonNegative) {
  ExponentialSampler exp_sampler(100.0);
  const auto sets = draw_arrival_sets_from(16, exp_sampler, 5, 3);
  ASSERT_EQ(sets.size(), 5u);
  for (const auto& set : sets) {
    double lo = 1e300;
    for (double a : set) {
      EXPECT_GE(a, 0.0);
      lo = std::min(lo, a);
    }
    EXPECT_DOUBLE_EQ(lo, 0.0);
  }
}

TEST(SimulateDelay, SigmaZeroEqualsEq1ForFullTrees) {
  SweepOptions o;
  o.sigma = 0.0;
  o.trials = 1;
  for (std::size_t d : {2u, 4u, 8u, 64u}) {
    const auto s = simulate_delay(64, d, o);
    EXPECT_DOUBLE_EQ(s.mean_delay, eq1_sync_delay(64, d, o.t_c)) << d;
    EXPECT_DOUBLE_EQ(s.stddev_delay, 0.0);
  }
}

TEST(SimulateDelay, SplitsUpdateAndContention) {
  SweepOptions o;
  o.sigma = 0.0;
  o.trials = 1;
  const auto s = simulate_delay(64, 4, o);
  EXPECT_DOUBLE_EQ(s.mean_update, 3 * o.t_c);  // structural depth 3
  EXPECT_DOUBLE_EQ(s.mean_contention, s.mean_delay - s.mean_update);
  // At sigma = 0 "the last processor" is a tie; depth is still >= 1.
  EXPECT_GE(s.mean_last_depth, 1.0);
}

TEST(SimulateDelay, RejectsEmptyTrials) {
  SweepOptions o;
  EXPECT_THROW(simulate_delay(8, 2, o, {}), std::invalid_argument);
}

TEST(FindOptimal, SigmaZeroIsClassicalFour) {
  SweepOptions o;
  o.sigma = 0.0;
  o.trials = 1;
  for (std::size_t p : {64u, 256u}) {
    const auto r = find_optimal_degree(p, o);
    EXPECT_EQ(r.best_degree, 4u) << p;
    EXPECT_DOUBLE_EQ(r.speedup_vs_4, 1.0);
  }
}

TEST(FindOptimal, WideImbalanceSmallSystemPrefersCentral) {
  // Paper Figure 3: p = 64, sigma = 25 t_c -> the central counter wins.
  SweepOptions o;
  o.sigma = 25.0 * o.t_c;
  o.trials = 20;
  const auto r = find_optimal_degree(64, o);
  EXPECT_EQ(r.best_degree, 64u);
  EXPECT_GT(r.speedup_vs_4, 1.5);
}

TEST(FindOptimal, OptimalDegreeGrowsWithSigma) {
  SweepOptions o;
  o.trials = 12;
  std::size_t prev = 0;
  for (double sigma_tc : {0.0, 6.25, 25.0, 100.0}) {
    o.sigma = sigma_tc * o.t_c;
    const auto r = find_optimal_degree(256, o);
    EXPECT_GE(r.best_degree, prev) << sigma_tc;
    prev = r.best_degree;
  }
  EXPECT_GT(prev, 4u);
}

TEST(FindOptimal, AlwaysIncludesDegreeFourBaseline) {
  SweepOptions o;
  o.sigma = 10.0;
  o.trials = 3;
  const auto r = find_optimal_degree(100, o, {8, 16});
  ASSERT_EQ(r.degrees.size(), 3u);
  EXPECT_EQ(r.degrees[0], 4u);
  EXPECT_GT(r.delay_at_4, 0.0);
}

TEST(FindOptimal, StatsAlignedWithDegrees) {
  SweepOptions o;
  o.sigma = 50.0;
  o.trials = 5;
  const auto r = find_optimal_degree(64, o);
  ASSERT_EQ(r.stats.size(), r.degrees.size());
  double best = 1e300;
  for (const auto& s : r.stats) best = std::min(best, s.mean_delay);
  EXPECT_DOUBLE_EQ(best, r.best_delay);
}

TEST(FindOptimal, McsKindAlsoWorks) {
  SweepOptions o;
  o.sigma = 0.0;
  o.trials = 1;
  o.kind = TreeKind::kMcs;
  const auto r = find_optimal_degree(64, o);
  EXPECT_GE(r.best_degree, 2u);
  EXPECT_GT(r.best_delay, 0.0);
  // MCS at degree 4, sigma 0 must beat (or tie) the plain tree: fewer
  // counters on the critical path.
  SweepOptions plain = o;
  plain.kind = TreeKind::kPlain;
  const auto rp = find_optimal_degree(64, plain);
  EXPECT_LE(r.delay_at_4, rp.delay_at_4);
}

TEST(FindOptimal, PairedArrivalsReduceNoise) {
  // Same seed => identical result (paired comparisons are reproducible).
  SweepOptions o;
  o.sigma = 100.0;
  o.trials = 10;
  const auto a = find_optimal_degree(128, o);
  const auto b = find_optimal_degree(128, o);
  EXPECT_EQ(a.best_degree, b.best_degree);
  EXPECT_DOUBLE_EQ(a.best_delay, b.best_delay);
}

}  // namespace
}  // namespace imbar::simb
