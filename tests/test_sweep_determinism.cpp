// Seeded sweeps must be bit-reproducible: the paper-figure pipelines
// (bench/fig*) cache and diff CSV output across runs, so a sweep with
// the same seed has to produce byte-identical bytes — in-process, and
// against the golden file committed under tests/data/.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "simbarrier/sweep.hpp"
#include "util/csv.hpp"

namespace imbar {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The canonical determinism workload: paired degree sweeps over two
/// machine sizes and two imbalance levels, default seed, written with
/// CsvWriter's fixed numeric formatting.
std::string generate_sweep_csv(const std::string& path) {
  {
    // Scoped so the stream is flushed and closed before the read-back.
    CsvWriter csv(path,
                  {"procs", "sigma", "degree", "mean_delay", "stddev_delay"});
    for (const std::size_t procs : {std::size_t{8}, std::size_t{32}}) {
      for (const double sigma : {0.0, 10.0}) {
        simb::SweepOptions opts;
        opts.trials = 10;
        opts.sigma = sigma;
        const simb::OptimalDegreeResult res =
            simb::find_optimal_degree(procs, opts);
        for (std::size_t i = 0; i < res.degrees.size(); ++i)
          csv.write_row_numeric({static_cast<double>(procs), sigma,
                                 static_cast<double>(res.degrees[i]),
                                 res.stats[i].mean_delay,
                                 res.stats[i].stddev_delay});
      }
    }
  }
  return slurp(path);
}

TEST(SweepDeterminism, SameSeedProducesByteIdenticalCsv) {
  const std::string first = generate_sweep_csv(
      ::testing::TempDir() + "sweep_determinism_a.csv");
  const std::string second = generate_sweep_csv(
      ::testing::TempDir() + "sweep_determinism_b.csv");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(SweepDeterminism, MatchesCommittedGoldenFile) {
  const std::string golden =
      slurp(std::string(IMBAR_TEST_DATA_DIR) + "/sweep_golden.csv");
  ASSERT_FALSE(golden.empty())
      << "missing tests/data/sweep_golden.csv — regenerate with "
         "test_sweep_determinism --gtest_filter='*SameSeed*' and copy "
         "the emitted file (see docs/testing.md)";
  const std::string generated = generate_sweep_csv(
      ::testing::TempDir() + "sweep_determinism_golden_check.csv");
  EXPECT_EQ(generated, golden)
      << "seeded sweep output drifted from tests/data/sweep_golden.csv; "
         "if the change is intentional, refresh the golden file "
         "(docs/testing.md)";
}

}  // namespace
}  // namespace imbar
