// Combining-tree topology builders: structural invariants.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "simbarrier/topology.hpp"

namespace imbar::simb {
namespace {

TEST(PlainTopology, CentralCounterIsSingleNode) {
  const Topology t = Topology::central(16);
  EXPECT_EQ(t.counters(), 1u);
  EXPECT_EQ(t.node(t.root()).fan_in, 16);
  EXPECT_EQ(t.max_depth(), 1);
  t.validate();
}

TEST(PlainTopology, FullTreeShape) {
  const Topology t = Topology::plain(64, 4);
  // 16 leaves + 4 + 1 = 21 counters, depth 3.
  EXPECT_EQ(t.counters(), 21u);
  EXPECT_EQ(t.max_depth(), 3);
  EXPECT_EQ(t.degree(), 4u);
  EXPECT_EQ(t.kind(), TreeKind::kPlain);
  t.validate();
}

TEST(PlainTopology, RaggedTreeStillValid) {
  const Topology t = Topology::plain(10, 4);
  // ceil(10/4) = 3 leaves, then 1 root.
  EXPECT_EQ(t.counters(), 4u);
  EXPECT_EQ(t.max_depth(), 2);
  t.validate();
}

TEST(PlainTopology, LeafFanInsSumToProcs) {
  for (std::size_t p : {5u, 17u, 64u, 100u}) {
    const Topology t = Topology::plain(p, 4);
    std::size_t attached = 0;
    for (std::size_t c = 0; c < t.counters(); ++c)
      if (t.node(static_cast<int>(c)).children.empty())
        attached += static_cast<std::size_t>(t.node(static_cast<int>(c)).fan_in);
    EXPECT_EQ(attached, p);
    t.validate();
  }
}

TEST(PlainTopology, Validation) {
  EXPECT_THROW(Topology::plain(0, 4), std::invalid_argument);
  EXPECT_THROW(Topology::plain(8, 1), std::invalid_argument);
}

TEST(McsTopology, EveryCounterHasAttachedProcessor) {
  const Topology t = Topology::mcs(64, 4);
  for (std::size_t c = 0; c < t.counters(); ++c)
    EXPECT_GE(t.attached_count(static_cast<int>(c)), 1);
  t.validate();
}

TEST(McsTopology, InternalCountersHaveExactlyOneAttached) {
  const Topology t = Topology::mcs(200, 4);
  for (std::size_t c = 0; c < t.counters(); ++c) {
    const auto& n = t.node(static_cast<int>(c));
    if (!n.children.empty()) {
      EXPECT_EQ(t.attached_count(static_cast<int>(c)), 1);
      EXPECT_LE(n.children.size(), 4u);
    } else {
      EXPECT_LE(t.attached_count(static_cast<int>(c)), 5);  // degree + 1
    }
  }
  t.validate();
}

TEST(McsTopology, TinyGroupsCollapseToOneCounter) {
  for (std::size_t p = 1; p <= 5; ++p) {
    const Topology t = Topology::mcs(p, 4);
    EXPECT_EQ(t.counters(), 1u) << p;
    EXPECT_EQ(t.node(t.root()).fan_in, static_cast<int>(p));
    t.validate();
  }
  // 6 procs, degree 4: root (1 attached) + 4 leaf groups of the
  // remaining 5.
  EXPECT_EQ(Topology::mcs(6, 4).counters(), 5u);
}

TEST(McsTopology, ShallowerAverageDepthThanPlain) {
  // Attaching processors to internal counters shortens the average
  // path — the structural reason for the Section 4 ~5% advantage.
  const Topology mcs = Topology::mcs(4096, 4);
  const Topology plain = Topology::plain(4096, 4);
  auto mean_depth = [](const Topology& t) {
    double sum = 0.0;
    for (int c : t.initial_counter()) sum += t.depth_to_root(c);
    return sum / static_cast<double>(t.procs());
  };
  EXPECT_LT(mean_depth(mcs), mean_depth(plain));
}

TEST(McsTopology, DepthNearLogP) {
  const Topology t = Topology::mcs(4096, 4);
  EXPECT_GE(t.max_depth(), 5);
  EXPECT_LE(t.max_depth(), 7);
  const Topology t16 = Topology::mcs(4096, 16);
  EXPECT_GE(t16.max_depth(), 3);
  EXPECT_LE(t16.max_depth(), 4);
}

TEST(RingTopology, MergesSubtreesUnderOneRoot) {
  // KSR1 footnote 5: two rings (32 + 24) merged by an additional level.
  const Topology t = Topology::mcs_rings({32, 24}, 16);
  t.validate();
  EXPECT_EQ(t.procs(), 56u);
  EXPECT_EQ(t.node(t.root()).children.size(), 2u);
  // Proc 0 is attached to the root, ring 0.
  EXPECT_EQ(t.initial_counter()[0], t.root());
  EXPECT_EQ(t.proc_ring()[0], 0);
  // Degree 16 with two rings gives initial depth 3 (paper footnote 5).
  EXPECT_EQ(t.max_depth(), 3);
}

TEST(RingTopology, RingsAreContiguousAndLabelled) {
  const Topology t = Topology::mcs_rings({32, 24}, 4);
  for (std::size_t p = 1; p < 32; ++p) EXPECT_EQ(t.proc_ring()[p], 0);
  for (std::size_t p = 32; p < 56; ++p) EXPECT_EQ(t.proc_ring()[p], 1);
  // Counters under each subtree carry their ring id.
  for (int child : t.node(t.root()).children) {
    const int ring = t.node(child).ring;
    EXPECT_TRUE(ring == 0 || ring == 1);
  }
  t.validate();
}

TEST(RingTopology, SingleRingDelegatesToMcs) {
  const Topology a = Topology::mcs_rings({56}, 4);
  const Topology b = Topology::mcs(56, 4);
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_EQ(a.max_depth(), b.max_depth());
}

TEST(RingTopology, Validation) {
  EXPECT_THROW(Topology::mcs_rings({}, 4), std::invalid_argument);
  EXPECT_THROW(Topology::mcs_rings({4, 0}, 4), std::invalid_argument);
  EXPECT_THROW(Topology::mcs_rings({1, 8}, 4), std::invalid_argument);
}

TEST(Topology, DepthToRootAlongPaths) {
  const Topology t = Topology::plain(64, 4);
  EXPECT_EQ(t.depth_to_root(t.root()), 1);
  for (int c : t.initial_counter()) EXPECT_EQ(t.depth_to_root(c), 3);
}

TEST(WithoutProc, PlainLeafShrinksByOne) {
  const Topology t = Topology::plain(16, 4);
  const Topology s = t.without_proc(5);
  s.validate();
  EXPECT_EQ(s.procs(), 15u);
  // Total leaf fan-in accounts for exactly the survivors.
  std::size_t attached = 0;
  for (std::size_t c = 0; c < s.counters(); ++c)
    attached += static_cast<std::size_t>(s.attached_count(static_cast<int>(c)));
  EXPECT_EQ(attached, 15u);
}

TEST(WithoutProc, PlainPruneCascadesThroughEmptiedCounters) {
  // Degree-2 chain: removing both procs of a leaf prunes the leaf, and
  // the prune cascades if its parent is emptied too.
  Topology t = Topology::plain(8, 2);
  const std::size_t counters_before = t.counters();
  t = t.without_proc(7);
  t = t.without_proc(6);  // survivor 7 became 6 after the first splice
  t.validate();
  EXPECT_EQ(t.procs(), 6u);
  EXPECT_LT(t.counters(), counters_before);
}

TEST(WithoutProc, McsPromotesChildrenOfDrainedCounters) {
  const Topology t = Topology::mcs(16, 4);
  Topology s = t.without_proc(0);
  s.validate();
  EXPECT_EQ(s.procs(), 15u);
  // Every MCS counter keeps its attached processor invariant.
  for (std::size_t c = 0; c < s.counters(); ++c)
    EXPECT_GE(s.attached_count(static_cast<int>(c)), 1);
}

TEST(WithoutProc, SurvivesRemovalDownToOneProc) {
  Topology t = Topology::mcs(8, 2);
  for (std::size_t removed = 0; removed < 7; ++removed) {
    t = t.without_proc(0);
    t.validate();
    EXPECT_EQ(t.procs(), 7u - removed);
  }
  EXPECT_THROW((void)t.without_proc(0), std::logic_error);
}

TEST(WithoutProc, RejectsOutOfRange) {
  const Topology t = Topology::plain(8, 4);
  EXPECT_THROW((void)t.without_proc(8), std::invalid_argument);
}

TEST(WithoutProc, BothKindsStayValidUnderRandomRemovalOrder) {
  for (const bool mcs : {false, true}) {
    Topology t = mcs ? Topology::mcs(40, 4) : Topology::plain(40, 4);
    // Deterministic pseudo-random-ish removal order, kept independent
    // of any RNG: strides that hit every residue class.
    std::size_t next = 13;
    for (std::size_t left = 40; left > 1; --left) {
      next = (next * 7 + 3) % left;
      t = t.without_proc(next);
      t.validate();
      EXPECT_EQ(t.procs(), left - 1);
    }
  }
}

// Property sweep: structural invariants hold over a (p, d) grid for
// both kinds.
struct TopoCase {
  std::size_t p;
  std::size_t d;
};

class TopologyProperty : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TopologyProperty, PlainAndMcsValidate) {
  const auto [p, d] = GetParam();
  const Topology plain = Topology::plain(p, d);
  plain.validate();
  EXPECT_EQ(plain.procs(), p);
  const Topology mcs = Topology::mcs(p, d);
  mcs.validate();
  EXPECT_EQ(mcs.procs(), p);
  // All processors placed on real counters.
  std::set<int> used(mcs.initial_counter().begin(), mcs.initial_counter().end());
  for (int c : used) EXPECT_LT(c, static_cast<int>(mcs.counters()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopologyProperty,
    ::testing::Values(TopoCase{2, 2}, TopoCase{3, 2}, TopoCase{7, 2},
                      TopoCase{8, 2}, TopoCase{9, 2}, TopoCase{16, 4},
                      TopoCase{17, 4}, TopoCase{56, 4}, TopoCase{56, 16},
                      TopoCase{64, 8}, TopoCase{100, 3}, TopoCase{256, 16},
                      TopoCase{1000, 7}, TopoCase{4096, 4}, TopoCase{4096, 64},
                      TopoCase{4096, 4096}));

}  // namespace
}  // namespace imbar::simb
