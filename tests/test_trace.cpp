// Trace save/load round-trip and format validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "workload/trace.hpp"

namespace imbar {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Trace, RoundTripPreservesEveryValue) {
  const std::string path = temp_path("trace_roundtrip.csv");
  IidGenerator gen(6, make_normal(1000.0, 50.0), 71);
  const std::size_t written = save_trace_csv(path, gen, 30);
  EXPECT_EQ(written, 30u);

  RecordedGenerator loaded = load_trace_csv(path);
  EXPECT_EQ(loaded.procs(), 6u);
  EXPECT_EQ(loaded.iterations(), 30u);

  IidGenerator again(6, make_normal(1000.0, 50.0), 71);
  std::vector<double> expect(6), got(6);
  for (std::size_t i = 0; i < 30; ++i) {
    again.generate(i, expect);
    loaded.generate(i, got);
    for (std::size_t p = 0; p < 6; ++p)
      EXPECT_NEAR(got[p], expect[p], std::abs(expect[p]) * 1e-9 + 1e-9);
  }
  std::remove(path.c_str());
}

TEST(Trace, LoadedTraceDrivesEpisodes) {
  const std::string path = temp_path("trace_episode.csv");
  SystemicGenerator gen(16, 500.0, 40.0, 5.0, 3);
  save_trace_csv(path, gen, 20);
  RecordedGenerator loaded = load_trace_csv(path);
  std::vector<double> row(16);
  loaded.generate(0, row);
  EXPECT_EQ(row.size(), 16u);
  EXPECT_GT(loaded.nominal_mean(), 300.0);
  std::remove(path.c_str());
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

TEST(Trace, EmptyFileThrows) {
  const std::string path = temp_path("trace_empty.csv");
  std::ofstream(path).close();
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, HeaderOnlyThrows) {
  const std::string path = temp_path("trace_header.csv");
  std::ofstream(path) << "p0,p1\n";
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, RaggedRowThrows) {
  const std::string path = temp_path("trace_ragged.csv");
  std::ofstream(path) << "p0,p1\n1.0,2.0\n3.0\n";
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, NonNumericCellThrows) {
  const std::string path = temp_path("trace_nan.csv");
  std::ofstream(path) << "p0,p1\n1.0,banana\n";
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, ExternalToolFormatIsAccepted) {
  // Hand-written CSV (no imbar writer involved).
  const std::string path = temp_path("trace_external.csv");
  std::ofstream(path) << "a,b,c\n10,20,30\n11,21,31\n";
  RecordedGenerator gen = load_trace_csv(path);
  EXPECT_EQ(gen.procs(), 3u);
  EXPECT_EQ(gen.iterations(), 2u);
  std::vector<double> row(3);
  gen.generate(1, row);
  EXPECT_EQ(row, (std::vector<double>{11, 21, 31}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imbar
