// Event-driven barrier simulation: exact delay arithmetic on small
// hand-checkable cases, plus structural properties on larger trees.
#include <gtest/gtest.h>

#include <vector>

#include "model/degree.hpp"
#include "simbarrier/tree_sim.hpp"

namespace imbar::simb {
namespace {

SimOptions static_opts(double t_c = 20.0) {
  SimOptions o;
  o.t_c = t_c;
  o.placement = Placement::kStatic;
  return o;
}

TEST(TreeSim, CentralCounterSimultaneousArrivalsSerialize) {
  TreeBarrierSim sim(Topology::central(8), static_opts(10.0));
  std::vector<double> signals(8, 0.0);
  const auto r = sim.run_iteration(signals);
  // 8 serialized updates of 10 each.
  EXPECT_DOUBLE_EQ(r.release, 80.0);
  EXPECT_DOUBLE_EQ(r.sync_delay, 80.0);
  EXPECT_EQ(r.updates, 8u);
  EXPECT_EQ(r.last_proc_depth, 1);
}

TEST(TreeSim, CentralCounterSpreadArrivalsHideContention) {
  TreeBarrierSim sim(Topology::central(4), static_opts(10.0));
  // Arrivals 0, 20, 40, 60: no queueing, the last update runs alone.
  const auto r = sim.run_iteration(std::vector<double>{0, 20, 40, 60});
  EXPECT_DOUBLE_EQ(r.release, 70.0);
  EXPECT_DOUBLE_EQ(r.sync_delay, 10.0);
  EXPECT_DOUBLE_EQ(r.last_proc_wait, 0.0);
}

TEST(TreeSim, FullTreeSimultaneousMatchesEq1) {
  // The simulator must land exactly on Eq. 1 (L * d * t_c) for full
  // trees with simultaneous arrivals — the paper's baseline case.
  for (std::size_t d : {2u, 4u, 8u}) {
    const std::size_t p = 64;
    TreeBarrierSim sim(Topology::plain(p, d), static_opts(20.0));
    const auto r = sim.run_iteration(std::vector<double>(p, 0.0));
    EXPECT_DOUBLE_EQ(r.sync_delay, eq1_sync_delay(p, d, 20.0)) << "d=" << d;
  }
}

TEST(TreeSim, TwoLevelHandComputedSchedule) {
  // 4 procs, degree 2: two leaves feeding a root. Arrivals 0,0,0,5 and
  // t_c = 10. Leaf A (procs 0,1): updates at 0-10, 10-20; carrier
  // reaches root at 20, root busy 20-30. Leaf B (procs 2,3): proc 2 at
  // 0-10; proc 3 arrives 5, served 10-20; carrier at root waits until
  // 30, fills root 30-40.
  TreeBarrierSim sim(Topology::plain(4, 2), static_opts(10.0));
  const auto r = sim.run_iteration(std::vector<double>{0, 0, 0, 5});
  EXPECT_DOUBLE_EQ(r.release, 40.0);
  EXPECT_DOUBLE_EQ(r.last_arrival, 5.0);
  EXPECT_DOUBLE_EQ(r.sync_delay, 35.0);
  EXPECT_EQ(r.last_proc, 3);
  EXPECT_EQ(r.last_proc_depth, 2);
  // Proc 3 waited 5 at the leaf (arrived 5, served at 10) and 10 at the
  // root (arrived 20, served at 30).
  EXPECT_DOUBLE_EQ(r.last_proc_wait, 15.0);
}

TEST(TreeSim, VeryLateArrivalSeesOnlyUpdatePath) {
  // One processor arrives long after everyone drained: its delay is
  // exactly depth * t_c regardless of degree.
  for (std::size_t d : {2u, 4u, 8u}) {
    const std::size_t p = 64;
    TreeBarrierSim sim(Topology::plain(p, d), static_opts(20.0));
    std::vector<double> signals(p, 0.0);
    signals[p - 1] = 1e6;
    const auto r = sim.run_iteration(signals);
    EXPECT_DOUBLE_EQ(r.sync_delay,
                     static_cast<double>(tree_levels(p, d)) * 20.0);
  }
}

TEST(TreeSim, UpdateCountIsProcsPlusInternalCarries) {
  // Every counter fills exactly once; total updates = p + counters - 1
  // (each non-root fill produces one carry).
  for (auto kind : {TreeKind::kPlain, TreeKind::kMcs}) {
    const Topology topo = kind == TreeKind::kPlain ? Topology::plain(100, 4)
                                                   : Topology::mcs(100, 4);
    const std::size_t counters = topo.counters();
    TreeBarrierSim sim(topo, static_opts());
    const auto r = sim.run_iteration(std::vector<double>(100, 0.0));
    EXPECT_EQ(r.updates, 100u + counters - 1u);
  }
}

TEST(TreeSim, RejectsBadInput) {
  TreeBarrierSim sim(Topology::plain(4, 2), static_opts());
  EXPECT_THROW(sim.run_iteration(std::vector<double>{0, 0, 0}),
               std::invalid_argument);
  // Dynamic placement on a plain tree is meaningless.
  SimOptions dyn = static_opts();
  dyn.placement = Placement::kDynamic;
  EXPECT_THROW(TreeBarrierSim(Topology::plain(4, 2), dyn),
               std::invalid_argument);
  SimOptions bad = static_opts();
  bad.t_c = 0.0;
  EXPECT_THROW(TreeBarrierSim(Topology::plain(4, 2), bad),
               std::invalid_argument);
}

TEST(TreeSim, ArrivalBeforePreviousReleaseThrows) {
  TreeBarrierSim sim(Topology::central(2), static_opts(10.0));
  sim.run_iteration(std::vector<double>{0.0, 0.0});  // releases at 20
  EXPECT_THROW(sim.run_iteration(std::vector<double>{5.0, 25.0}),
               std::invalid_argument);
}

TEST(TreeSim, ConsecutiveIterationsAccumulateTime) {
  TreeBarrierSim sim(Topology::central(2), static_opts(10.0));
  const auto r1 = sim.run_iteration(std::vector<double>{0.0, 0.0});
  EXPECT_DOUBLE_EQ(r1.release, 20.0);
  // Proc 1 occupies the counter 25-35; proc 0 (arriving 30) is served
  // 35-45 and fills.
  const auto r2 = sim.run_iteration(std::vector<double>{30.0, 25.0});
  EXPECT_DOUBLE_EQ(r2.release, 45.0);
  EXPECT_DOUBLE_EQ(r2.last_arrival, 30.0);
  EXPECT_DOUBLE_EQ(r2.sync_delay, 15.0);
  EXPECT_EQ(r2.last_proc, 0);
}

TEST(TreeSim, ResetRewindsClockAndPlacement) {
  TreeBarrierSim sim(Topology::central(2), static_opts(10.0));
  sim.run_iteration(std::vector<double>{0.0, 0.0});
  sim.reset();
  const auto r = sim.run_iteration(std::vector<double>{0.0, 0.0});
  EXPECT_DOUBLE_EQ(r.release, 20.0);
  EXPECT_EQ(sim.total_updates(), 2u);  // stats also rewound
}

TEST(TreeSim, McsAttachedProcessorsSeeShorterPaths) {
  const Topology topo = Topology::mcs(64, 4);
  TreeBarrierSim sim(topo, static_opts());
  sim.run_iteration(std::vector<double>(64, 0.0));
  const auto& updates = sim.last_updates_per_proc();
  // Proc 0 is attached to the root: exactly one update.
  EXPECT_EQ(updates[0], 1);
}

TEST(TreeSim, RandomServiceOrderPreservesTotals) {
  SimOptions o = static_opts(10.0);
  o.service_order = sim::ServiceOrder::kRandom;
  o.rng_seed = 99;
  TreeBarrierSim sim(Topology::central(16), o);
  const auto r = sim.run_iteration(std::vector<double>(16, 0.0));
  EXPECT_DOUBLE_EQ(r.release, 160.0);  // same busy time, any order
  EXPECT_EQ(r.updates, 16u);
}

TEST(TreeSim, ContentionDecreasesWithSpread) {
  // Wider arrival spread -> less queueing on the last processor's path.
  const std::size_t p = 256;
  TreeBarrierSim sim(Topology::plain(p, 16), static_opts(20.0));
  auto spread = [&](double gap) {
    sim.reset();
    std::vector<double> signals(p);
    for (std::size_t i = 0; i < p; ++i) signals[i] = gap * static_cast<double>(i);
    return sim.run_iteration(signals).sync_delay;
  };
  EXPECT_GT(spread(0.0), spread(5.0));
  EXPECT_GE(spread(5.0), spread(50.0));
}

TEST(TreeSim, CrossRingFactorScalesRemoteUpdates) {
  // Two rings of 2, degree 2: ring-1 procs hit their own ring counters
  // at t_c but the ring-0 root at t_c * factor.
  const Topology topo = Topology::mcs_rings({2, 2}, 2);
  SimOptions o = static_opts(10.0);
  o.cross_ring_factor = 3.0;
  TreeBarrierSim sim(topo, o);
  const auto r = sim.run_iteration(std::vector<double>(4, 0.0));
  // Compare against the uniform-memory run: the penalized run must be
  // strictly slower because the ring-1 subtree carrier crosses rings.
  TreeBarrierSim uniform(topo, static_opts(10.0));
  const auto ru = uniform.run_iteration(std::vector<double>(4, 0.0));
  EXPECT_GT(r.release, ru.release);
}

TEST(TreeSim, CrossRingFactorExactArithmetic) {
  // Ring layout: root (ring 0, attached proc 0) with two subtree
  // counters. Procs 1 (ring 0) and 2,3 (ring 1). With everyone at 0 and
  // factor 2: ring-1 leaf drains at 2*t_c... all its updates are local
  // (counter is in ring 1); only its carry to the root is remote.
  const Topology topo = Topology::mcs_rings({2, 2}, 2);
  SimOptions o = static_opts(10.0);
  o.cross_ring_factor = 2.0;
  TreeBarrierSim sim(topo, o);
  const auto r = sim.run_iteration(std::vector<double>(4, 0.0));
  // Root receives: proc0 local (10), ring-0 subtree carry (local, after
  // 10), ring-1 carry (remote, 20, arriving after its leaf drains at
  // 20). Root serialization: 10 (p0, 0-10) + 10 (ring-0 carry, 10-20) +
  // 20 (ring-1 carry, queued at 20, served 20-40) = release 40.
  EXPECT_DOUBLE_EQ(r.release, 40.0);
}

TEST(TreeSim, CrossRingFactorValidation) {
  SimOptions o = static_opts();
  o.cross_ring_factor = 0.5;
  EXPECT_THROW(TreeBarrierSim(Topology::mcs(8, 2), o), std::invalid_argument);
}

TEST(TreeSim, DeterministicAcrossRuns) {
  std::vector<double> signals;
  for (int i = 0; i < 64; ++i) signals.push_back((i * 37) % 101 * 1.5);
  auto run = [&] {
    TreeBarrierSim sim(Topology::plain(64, 4), static_opts());
    return sim.run_iteration(signals).sync_delay;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace imbar::simb
