// Table rendering, CSV escaping, CLI parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace imbar {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.row().add("alpha").num(1.5, 1);
  t.row().add("beta").num(22LL);
  const std::string s = t.str(0);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.row().add("x").add("y").add("z");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 0), "3");
  EXPECT_EQ(Table::fmt(-1.0, 1), "-1.0");
}

TEST(Table, AddBeforeRowStartsARow) {
  Table t({"only"});
  t.add("cell");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, ColumnsAlign) {
  Table t({"k", "v"});
  t.row().add("long-name").num(1LL);
  t.row().add("s").num(100LL);
  std::istringstream in(t.str(0));
  std::string l1, l2, l3, l4;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  std::getline(in, l4);
  EXPECT_EQ(l3.size(), l4.size());
}

TEST(Banner, ContainsTitle) {
  const std::string b = banner("Hello");
  EXPECT_NE(b.find("Hello"), std::string::npos);
  EXPECT_GE(b.size(), 72u);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/imbar_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.write_row({"1", "2"});
    w.write_row_numeric({3.5, 4.25});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  const std::string path = ::testing::TempDir() + "/imbar_csv_test2.csv";
  CsvWriter w(path, {"a"});
  EXPECT_THROW(w.write_row({"1", "2"}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--procs=64", "--verbose", "pos1"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("procs", 0), 64);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.has("missing"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(cli.get_bool("b", true));
}

TEST(Cli, ParsesLists) {
  const char* argv[] = {"prog", "--degrees=2,4,8", "--sigmas=0.5,1.5"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_int_list("degrees", {}), (std::vector<long long>{2, 4, 8}));
  const auto sig = cli.get_double_list("sigmas", {});
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_DOUBLE_EQ(sig[0], 0.5);
  EXPECT_DOUBLE_EQ(sig[1], 1.5);
}

TEST(Cli, ListDefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int_list("xs", {1, 2}), (std::vector<long long>{1, 2}));
}

TEST(Stopwatch, MeasuresNonNegativeElapsed) {
  Stopwatch sw;
  EXPECT_GE(sw.elapsed_us(), 0.0);
  sw.reset();
  EXPECT_GE(sw.elapsed_ms(), 0.0);
  EXPECT_GE(sw.elapsed_s(), 0.0);
}

}  // namespace
}  // namespace imbar
