// Arrival-time generators: the three imbalance regimes of Section 1.
#include <gtest/gtest.h>

#include <vector>

#include "stats/rank.hpp"
#include "stats/summary.hpp"
#include "workload/arrival.hpp"

namespace imbar {
namespace {

std::vector<std::vector<double>> collect(ArrivalGenerator& gen, std::size_t iters) {
  std::vector<std::vector<double>> rows(iters, std::vector<double>(gen.procs()));
  for (std::size_t i = 0; i < iters; ++i) gen.generate(i, rows[i]);
  return rows;
}

TEST(IidGenerator, SizeAndMoments) {
  IidGenerator gen(64, make_normal(100.0, 5.0), 42);
  EXPECT_EQ(gen.procs(), 64u);
  EXPECT_DOUBLE_EQ(gen.nominal_mean(), 100.0);
  EXPECT_DOUBLE_EQ(gen.nominal_stddev(), 5.0);
  RunningStats rs;
  auto rows = collect(gen, 200);
  for (const auto& row : rows)
    for (double w : row) rs.add(w);
  EXPECT_NEAR(rs.mean(), 100.0, 0.2);
  EXPECT_NEAR(rs.stddev(), 5.0, 0.2);
}

TEST(IidGenerator, OrderIsNotPersistent) {
  IidGenerator gen(32, make_normal(0.0, 1.0), 7);
  auto rows = collect(gen, 200);
  EXPECT_NEAR(rank_autocorrelation(rows, 1), 0.0, 0.12);
}

TEST(IidGenerator, Validation) {
  EXPECT_THROW(IidGenerator(0, make_normal(0, 1), 1), std::invalid_argument);
  EXPECT_THROW(IidGenerator(4, nullptr, 1), std::invalid_argument);
  IidGenerator gen(4, make_normal(0, 1), 1);
  std::vector<double> wrong(3);
  EXPECT_THROW(gen.generate(0, wrong), std::invalid_argument);
}

TEST(IidGenerator, DeterministicGivenSeed) {
  IidGenerator a(16, make_normal(10, 2), 99), b(16, make_normal(10, 2), 99);
  std::vector<double> ra(16), rb(16);
  for (int i = 0; i < 10; ++i) {
    a.generate(static_cast<std::size_t>(i), ra);
    b.generate(static_cast<std::size_t>(i), rb);
    EXPECT_EQ(ra, rb);
  }
}

TEST(SystemicGenerator, OrderIsHighlyPersistent) {
  // Bias dominates noise: the same processors are always late.
  SystemicGenerator gen(32, 100.0, 10.0, 1.0, 5);
  auto rows = collect(gen, 100);
  EXPECT_GT(rank_autocorrelation(rows, 1), 0.9);
  EXPECT_GT(rank_autocorrelation(rows, 20), 0.9);
}

TEST(SystemicGenerator, NominalStddevCombinesComponents) {
  SystemicGenerator gen(8, 0.0, 3.0, 4.0, 1);
  EXPECT_DOUBLE_EQ(gen.nominal_stddev(), 5.0);
  EXPECT_EQ(gen.biases().size(), 8u);
}

TEST(SystemicGenerator, PureNoiseDegeneratesToIid) {
  SystemicGenerator gen(32, 0.0, 0.0, 1.0, 3);
  auto rows = collect(gen, 120);
  EXPECT_NEAR(rank_autocorrelation(rows, 1), 0.0, 0.15);
}

TEST(EvolvingGenerator, PersistenceDecaysWithLag) {
  // rho = 0.95: strong short-lag correlation that fades.
  EvolvingGenerator gen(32, 100.0, 10.0, 0.5, 0.95, 11);
  auto rows = collect(gen, 400);
  const double r1 = rank_autocorrelation(rows, 1);
  const double r50 = rank_autocorrelation(rows, 50);
  EXPECT_GT(r1, 0.8);
  EXPECT_LT(r50, r1 - 0.2);
}

TEST(EvolvingGenerator, RhoZeroIsIid) {
  EvolvingGenerator gen(32, 0.0, 1.0, 0.0, 0.0, 13);
  auto rows = collect(gen, 150);
  EXPECT_NEAR(rank_autocorrelation(rows, 1), 0.0, 0.15);
}

TEST(EvolvingGenerator, RejectsBadRho) {
  EXPECT_THROW(EvolvingGenerator(4, 0, 1, 0, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(EvolvingGenerator(4, 0, 1, 0, 1.5, 1), std::invalid_argument);
}

TEST(EvolvingGenerator, StationaryVarianceIsPreserved) {
  EvolvingGenerator gen(256, 0.0, 4.0, 0.0, 0.9, 21);
  auto rows = collect(gen, 300);
  RunningStats early, late;
  for (double w : rows[0]) early.add(w);
  for (double w : rows[299]) late.add(w);
  EXPECT_NEAR(early.stddev(), 4.0, 0.8);
  EXPECT_NEAR(late.stddev(), 4.0, 0.8);
}

TEST(RecordedGenerator, ReplaysExactly) {
  IidGenerator src(8, make_normal(5.0, 1.0), 17);
  RecordedGenerator rec = record(src, 20);
  EXPECT_EQ(rec.procs(), 8u);
  EXPECT_EQ(rec.iterations(), 20u);

  IidGenerator src2(8, make_normal(5.0, 1.0), 17);
  std::vector<double> expected(8), got(8);
  for (std::size_t i = 0; i < 20; ++i) {
    src2.generate(i, expected);
    rec.generate(i, got);
    EXPECT_EQ(got, expected) << "iteration " << i;
  }
}

TEST(RecordedGenerator, BoundsAndValidation) {
  RecordedGenerator rec({{1.0, 2.0}, {3.0, 4.0}});
  std::vector<double> out(2);
  EXPECT_THROW(rec.generate(2, out), std::out_of_range);
  EXPECT_THROW(RecordedGenerator({}), std::invalid_argument);
  EXPECT_THROW(RecordedGenerator({{1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_NEAR(rec.nominal_mean(), 2.5, 1e-12);
}

}  // namespace
}  // namespace imbar
