#!/usr/bin/env python3
"""Plot the reproduced figures from the bench binaries' CSV output.

The bench binaries print paper-shaped ASCII tables by default; the ones
with a machine-readable mode take --csv=<path>:

    build/bench/fig03_optimal_degree --csv=fig03.csv
    build/bench/fig08_dynamic_placement --csv=fig08.csv
    python3 tools/plot_figures.py fig03.csv fig08.csv -o plots/

Requires matplotlib. Kept dependency-free otherwise so it runs in any
venv: `pip install matplotlib`.
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    return rows


def plot_fig03(rows, outdir, plt):
    """Optimal degree vs sigma/t_c, one line per processor count."""
    by_procs = {}
    for r in rows:
        by_procs.setdefault(int(float(r["procs"])), []).append(
            (float(r["sigma_tc"]), int(float(r["opt_degree"])),
             float(r["speedup_vs_4"])))

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(10, 4))
    for procs, pts in sorted(by_procs.items()):
        pts.sort()
        xs = [max(p[0], 0.1) for p in pts]  # log axis; clamp sigma=0
        ax1.plot(xs, [p[1] for p in pts], marker="o", label=f"p={procs}")
        ax2.plot(xs, [p[2] for p in pts], marker="s", label=f"p={procs}")
    for ax, ylab in ((ax1, "optimal degree"), (ax2, "speedup vs degree 4")):
        ax.set_xscale("log")
        ax.set_xlabel("sigma / t_c")
        ax.set_ylabel(ylab)
        ax.grid(True, alpha=0.3)
        ax.legend()
    ax1.set_yscale("log", base=2)
    fig.suptitle("Figure 3: optimal combining-tree degree under load imbalance")
    fig.tight_layout()
    out = os.path.join(outdir, "fig03.png")
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")


def plot_fig08(rows, outdir, plt):
    """Dynamic placement: depth and speedup vs slack, per degree."""
    by_degree = {}
    for r in rows:
        by_degree.setdefault(int(float(r["degree"])), []).append(
            (float(r["slack_ms"]), float(r["static_depth"]),
             float(r["dyn_depth"]), float(r["speedup"])))

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(10, 4))
    for degree, pts in sorted(by_degree.items()):
        pts.sort()
        xs = [p[0] for p in pts]
        ax1.plot(xs, [p[1] for p in pts], "--", marker="o",
                 label=f"static d={degree}")
        ax1.plot(xs, [p[2] for p in pts], marker="o",
                 label=f"dynamic d={degree}")
        ax2.plot(xs, [p[3] for p in pts], marker="s", label=f"d={degree}")
    ax1.set_xlabel("slack (ms)")
    ax1.set_ylabel("last-processor depth")
    ax2.set_xlabel("slack (ms)")
    ax2.set_ylabel("sync speedup (dynamic / static)")
    for ax in (ax1, ax2):
        ax.grid(True, alpha=0.3)
        ax.legend()
    fig.suptitle("Figure 8: dynamic placement vs fuzzy-barrier slack")
    fig.tight_layout()
    out = os.path.join(outdir, "fig08.png")
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")


DISPATCH = {
    frozenset(["procs", "sigma_tc", "opt_degree", "opt_delay_us",
               "delay_at_4_us", "speedup_vs_4"]): plot_fig03,
    frozenset(["degree", "slack_ms", "static_depth", "dyn_depth", "speedup",
               "comm_overhead"]): plot_fig08,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csvs", nargs="+", help="CSV files from the benches")
    ap.add_argument("-o", "--outdir", default=".", help="output directory")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.outdir, exist_ok=True)
    for path in args.csvs:
        rows = read_csv(path)
        cols = frozenset(rows[0].keys())
        fn = DISPATCH.get(cols)
        if fn is None:
            print(f"{path}: unrecognized column set {sorted(cols)}",
                  file=sys.stderr)
            continue
        fn(rows, args.outdir, plt)


if __name__ == "__main__":
    main()
