#!/usr/bin/env python3
"""Plot the reproduced figures from the bench binaries' machine output.

The bench binaries print paper-shaped ASCII tables by default; the ones
with machine-readable modes take --csv=<path> or --json=<path> (the
"imbar.bench.v1" telemetry documents — see docs/observability.md):

    build/bench/fig03_optimal_degree --csv=fig03.csv
    build/bench/fig08_dynamic_placement --csv=fig08.csv
    build/bench/micro_real_barriers --json=BENCH_micro.json
    python3 tools/plot_figures.py fig03.csv fig08.csv BENCH_micro.json -o plots/

Requires matplotlib. Kept dependency-free otherwise so it runs in any
venv: `pip install matplotlib`.
"""

import argparse
import csv
import json
import os
import sys

BENCH_SCHEMA = "imbar.bench.v1"


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    return rows


def read_bench_json(path):
    """Load an "imbar.bench.v1" document -> (name, rows-as-dicts)."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise SystemExit(f"{path}: schema is not {BENCH_SCHEMA}")
    rows = doc.get("rows", [])
    if not rows:
        raise SystemExit(f"{path}: no rows")
    return doc.get("name", ""), rows


def plot_fig03(rows, outdir, plt):
    """Optimal degree vs sigma/t_c, one line per processor count."""
    by_procs = {}
    for r in rows:
        by_procs.setdefault(int(float(r["procs"])), []).append(
            (float(r["sigma_tc"]), int(float(r["opt_degree"])),
             float(r["speedup_vs_4"])))

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(10, 4))
    for procs, pts in sorted(by_procs.items()):
        pts.sort()
        xs = [max(p[0], 0.1) for p in pts]  # log axis; clamp sigma=0
        ax1.plot(xs, [p[1] for p in pts], marker="o", label=f"p={procs}")
        ax2.plot(xs, [p[2] for p in pts], marker="s", label=f"p={procs}")
    for ax, ylab in ((ax1, "optimal degree"), (ax2, "speedup vs degree 4")):
        ax.set_xscale("log")
        ax.set_xlabel("sigma / t_c")
        ax.set_ylabel(ylab)
        ax.grid(True, alpha=0.3)
        ax.legend()
    ax1.set_yscale("log", base=2)
    fig.suptitle("Figure 3: optimal combining-tree degree under load imbalance")
    fig.tight_layout()
    out = os.path.join(outdir, "fig03.png")
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")


def plot_fig08(rows, outdir, plt):
    """Dynamic placement: depth and speedup vs slack, per degree."""
    by_degree = {}
    for r in rows:
        by_degree.setdefault(int(float(r["degree"])), []).append(
            (float(r["slack_ms"]), float(r["static_depth"]),
             float(r["dyn_depth"]), float(r["speedup"])))

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(10, 4))
    for degree, pts in sorted(by_degree.items()):
        pts.sort()
        xs = [p[0] for p in pts]
        ax1.plot(xs, [p[1] for p in pts], "--", marker="o",
                 label=f"static d={degree}")
        ax1.plot(xs, [p[2] for p in pts], marker="o",
                 label=f"dynamic d={degree}")
        ax2.plot(xs, [p[3] for p in pts], marker="s", label=f"d={degree}")
    ax1.set_xlabel("slack (ms)")
    ax1.set_ylabel("last-processor depth")
    ax2.set_xlabel("slack (ms)")
    ax2.set_ylabel("sync speedup (dynamic / static)")
    for ax in (ax1, ax2):
        ax.grid(True, alpha=0.3)
        ax.legend()
    fig.suptitle("Figure 8: dynamic placement vs fuzzy-barrier slack")
    fig.tight_layout()
    out = os.path.join(outdir, "fig08.png")
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")


def plot_micro(rows, outdir, plt):
    """Per-kind episode throughput and latency from micro_real_barriers."""
    kinds = [r["kind"] for r in rows]
    xs = range(len(kinds))

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(11, 4))
    ax1.bar(xs, [float(r["episodes_per_sec"]) for r in rows], color="#4878d0")
    ax1.set_ylabel("episodes / s")
    ax2.plot(xs, [float(r["p50_us"]) for r in rows], marker="o", label="p50")
    ax2.plot(xs, [float(r["p99_us"]) for r in rows], marker="s", label="p99")
    ax2.set_ylabel("episode latency (us)")
    ax2.legend()
    for ax in (ax1, ax2):
        ax.set_xticks(list(xs))
        ax.set_xticklabels(kinds, rotation=45, ha="right")
        ax.grid(True, alpha=0.3)
    fig.suptitle("Real-thread barrier micro-benchmark, per kind")
    fig.tight_layout()
    out = os.path.join(outdir, "micro.png")
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")


DISPATCH = {
    frozenset(["procs", "sigma_tc", "opt_degree", "opt_delay_us",
               "delay_at_4_us", "speedup_vs_4"]): plot_fig03,
    frozenset(["degree", "slack_ms", "static_depth", "dyn_depth", "speedup",
               "comm_overhead"]): plot_fig08,
}

# "imbar.bench.v1" documents carry the bench name, so JSON routes by
# name first, then falls back to the column-set dispatch above (bench
# rows that mirror a CSV layout reuse the same plotter).
JSON_DISPATCH = {
    "micro_real_barriers": plot_micro,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+",
                    help="CSV or imbar.bench.v1 JSON files from the benches")
    ap.add_argument("-o", "--outdir", default=".", help="output directory")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.outdir, exist_ok=True)
    for path in args.inputs:
        if path.endswith(".json"):
            name, rows = read_bench_json(path)
            fn = JSON_DISPATCH.get(name)
        else:
            name, rows = "", read_csv(path)
            fn = None
        if fn is None:
            cols = frozenset(rows[0].keys())
            fn = DISPATCH.get(cols)
        if fn is None:
            print(f"{path}: unrecognized bench '{name}' / column set "
                  f"{sorted(rows[0].keys())}", file=sys.stderr)
            continue
        fn(rows, args.outdir, plt)


if __name__ == "__main__":
    main()
